package statefile

import "os"

// The allowlisted adapter file: the one place the FS seam is bound to
// the real filesystem, so ambient os functions are legal here.

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (*os.File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Remove(name string) error { return os.Remove(name) }
