// Fixtures for the pragma machinery itself: a well-formed ignore
// suppresses exactly one finding; a reasonless, unknown-check or stale
// ignore is a finding in its own right and suppresses nothing.
package server

import "time"

var suppressed = time.Now //xqvet:ignore clockinject fixture: a reasoned ignore must consume the finding on its line

// want "needs a non-empty reason"
//xqvet:ignore clockinject
var unsuppressed = time.Now // want "ambient time.Now"

//xqvet:ignore nosuchcheck the check name is bogus // want "unknown check"
var harmless = 1

//xqvet:ignore budgetpoints nothing on the next line can fire this // want "stale xqvet:ignore"
var alsoHarmless = 2
