// Firing and non-firing fixtures for lockdiscipline: double lock,
// unlock of a cold mutex, blocking operations under a lock, a leak
// past return, interprocedural re-acquisition, and a seeded two-lock
// order inversion.
package server

import "sync"

type Gate struct {
	mu sync.Mutex
	ch chan int
}

func doubleLock(g *Gate) {
	g.mu.Lock()
	g.mu.Lock() // want "acquired while already held"
	g.mu.Unlock()
}

func unlockCold(g *Gate) {
	g.mu.Unlock() // want "unlocked but not provably held"
}

func sendUnderLock(g *Gate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1 // want "channel send while holding"
}

func recvUnderLock(g *Gate) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding"
}

// A select with a default never blocks: the enqueue idiom is legal
// under a lock.
func trySendUnderLock(g *Gate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- 1:
	default:
	}
}

func leak(g *Gate, c bool) {
	g.mu.Lock() // want "may still be held at return"
	if c {
		g.mu.Unlock()
	}
}

// Releasing on every path (including early return) is clean.
func branchRelease(g *Gate, c bool) {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
}

// Re-acquisition through a callee, caught by the interprocedural
// may-acquire summary.
func outer(g *Gate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	inner(g) // want "may re-acquire"
}

func inner(g *Gate) {
	g.mu.Lock()
	g.mu.Unlock()
}

// Two functions taking the same pair of locks in opposite orders: a
// cycle in the module-wide acquisition-order graph.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want "lock-order inversion"
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
