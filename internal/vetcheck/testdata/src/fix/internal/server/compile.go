// Firing and non-firing fixtures for compilecache: the serving layer
// must obtain compiled schemas through the cache, never by calling the
// raw constructor.
package server

import "example.com/fix/internal/dtd"

func compileAdHoc(d *dtd.DTD) (*dtd.Compiled, error) {
	return dtd.NewCompiled(d) // want "bypasses the compilation cache"
}

func compileAliased(d *dtd.DTD) (*dtd.Compiled, error) {
	mk := dtd.NewCompiled // want "bypasses the compilation cache"
	return mk(d)
}

func compileCached(d *dtd.DTD) (*dtd.Compiled, error) {
	return dtd.Compile(d)
}

func compileExempted(d *dtd.DTD) (*dtd.Compiled, error) {
	//xqvet:ignore compilecache exercising the pragma path for this check
	return dtd.NewCompiled(d)
}
