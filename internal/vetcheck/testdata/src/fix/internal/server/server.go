// Firing and non-firing fixtures for the goroutine-recover rule and
// clockinject (server is in both GoRecoverPackages and ClockPackages).
package server

import (
	"time"

	"example.com/fix/internal/guard"
)

func work() {}

func spawnBare() {
	go work() // want "goroutine has no deferred recover"
}

func spawnNakedLit() {
	go func() { // want "goroutine has no deferred recover"
		work()
	}()
}

func spawnGuardRecover() {
	go func() {
		var err error
		defer guard.Recover(&err)
		work()
	}()
}

func spawnGuardOnPanic() {
	go func() {
		defer guard.OnPanic(func(*guard.InternalError) {})
		work()
	}()
}

func spawnNamedGuarded() {
	go guarded()
}

func guarded() {
	defer guard.OnPanic(func(*guard.InternalError) {})
	work()
}

// --- clockinject ---

func stamp() time.Time {
	return time.Now() // want "ambient time.Now"
}

var defaultClock = time.Now // want "ambient time.Now"

func nap() {
	time.Sleep(time.Millisecond) // want "ambient time.Sleep"
}

func age(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // Sub on values is fine; only ambient reads are banned
}

type clocked struct {
	now func() time.Time
}

func (c *clocked) stamp() time.Time { return c.now() }
