// Firing and non-firing fixtures for the global-randomness half of
// clockinject.
package faultinject

import "math/rand"

func draw() int {
	return rand.Intn(10) // want "global math/rand"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

func seeded(rng *rand.Rand) int {
	return rng.Intn(10) // drawing from an injected generator is the point
}

func fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructing a seeded source is legal
}
