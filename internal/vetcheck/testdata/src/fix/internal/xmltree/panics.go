// Firing and non-firing fixtures for the panicdiscipline typed-panic
// and recover-confinement rules (xmltree is an engine package).
package xmltree

import "example.com/fix/internal/guard"

func bare() {
	panic("boom") // want "panic in engine package must carry"
}

func typed() {
	panic(&guard.InternalError{Value: "invariant broken"})
}

func MustParse(ok bool) {
	if !ok {
		panic("must idiom: exported")
	}
}

func mustBuild(ok bool) {
	if !ok {
		panic("must idiom: unexported")
	}
}

func closureInsideMust() {}

// MustAll may panic even from a closure it contains.
func MustAll(ok bool) {
	f := func() {
		if !ok {
			panic("closure inside a Must constructor")
		}
	}
	f()
}

func sneaky() (err error) {
	defer func() {
		if r := recover(); r != nil { // want "recover.. outside internal/guard"
			err = nil
		}
	}()
	return nil
}

func disciplined() (err error) {
	defer guard.Recover(&err)
	return nil
}
