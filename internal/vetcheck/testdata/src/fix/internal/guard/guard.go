// Package guard is the fixture's stand-in for the real guard package:
// the checks match it by module-relative path and by name, so the
// signatures only need to be shaped like the real ones.
package guard

// InternalError mirrors the real typed panic payload.
type InternalError struct{ Value any }

func (e *InternalError) Error() string { return "internal error" }

// Recover mirrors the real boundary converter.
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Value: r}
	}
}

// OnPanic mirrors the real observing recoverer.
func OnPanic(f func(*InternalError)) {
	if r := recover(); r != nil {
		f(&InternalError{Value: r})
	}
}

// Budget mirrors the real budget: only the method set matters.
type Budget struct{ n int }

func (b *Budget) Tick()                 { b.n++ }
func (b *Budget) Check() error          { return nil }
func (b *Budget) AddNodes(n int) error  { b.n += n; return nil }
func (b *Budget) AddChains(n int) error { b.n += n; return nil }
func (b *Budget) CheckK(k int) error    { return nil }
func (b *Budget) Point(name string)     {}
