// Firing and non-firing fixtures for the frozenartifact extension to
// prepared plans: a cached CompiledExpr and the verdict rows its
// accessors expose are shared across every request that hits the plan
// cache, so nothing outside internal/plan may write through them.
package cdag

import (
	"example.com/fix/internal/bitset"
	"example.com/fix/internal/plan"
)

func defacePlan(ce *plan.CompiledExpr) {
	ce.PairFP = "forged" // want "write to field PairFP of a frozen artifact"
}

func pokeVerdictRow(ce *plan.CompiledExpr) {
	ce.Ret().Add(3) // want "mutates a bitset row of a frozen artifact"
}

// A local aliasing an accessor view is still the plan's memory.
func scrubWitness(ce *plan.CompiledExpr) {
	ws := ce.Witnesses()
	ws[0] = "scrubbed" // want "write through an index of a frozen artifact view"
}

func growWitnesses(ce *plan.CompiledExpr) []string {
	return append(ce.Witnesses(), "extra") // want "append to a slice view of a frozen artifact"
}

// Reading is what the accessors are for.
func readPlan(ce *plan.CompiledExpr) bool {
	return ce.K() > 0 && ce.Ret().Has(3)
}

// Clone returns fresh memory: the taint breaks and edits are legal.
func clonePlanRow(ce *plan.CompiledExpr) bitset.Set {
	fresh := ce.Ret().Clone()
	fresh.Add(1)
	return fresh
}
