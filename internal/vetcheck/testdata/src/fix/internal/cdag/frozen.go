// Firing and non-firing fixtures for frozenartifact: compiled schemas
// and the rows their accessors expose are immutable outside the home
// packages (dtd, chain, bitset).
package cdag

import (
	"example.com/fix/internal/bitset"
	"example.com/fix/internal/dtd"
)

func deface(c *dtd.Compiled) {
	c.Label = "patched" // want "write to field Label of a frozen artifact"
}

// A local aliasing an accessor view is still the artifact's memory.
func pokeRow(c *dtd.Compiled) {
	kids := c.Children(0)
	kids[0] = 9 // want "write through an index of a frozen artifact view"
}

func raiseBit(c *dtd.Compiled) {
	c.Reach(0).Add(3) // want "mutates a bitset row of a frozen artifact"
}

func growRow(c *dtd.Compiled) []int {
	return append(c.Children(0), 1) // want "append to a slice view of a frozen artifact"
}

// Reading is what the views are for.
func readOnly(c *dtd.Compiled) bool {
	return c.Reach(0).Has(3)
}

// Clone returns fresh memory: the taint breaks and edits are legal.
func cloneThenEdit(c *dtd.Compiled) bitset.Set {
	fresh := c.Reach(0).Clone()
	fresh.Add(3)
	return fresh
}

// Locally built sets are nobody's artifact.
func scratch() bitset.Set {
	s := make(bitset.Set, 4)
	s.Add(1)
	return s
}
