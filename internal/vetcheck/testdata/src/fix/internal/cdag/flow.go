// Flow-sensitive verdictflow fixtures: evidence propagation through
// locals, branch joins, helper summaries, the boolean operators, and
// the escape hatches the old name-based allowlist could not see.
package cdag

// Laundering through a local: invisible to a name-based check, caught
// by the dataflow.
func launderLocal() Verdict {
	ok := true
	return Verdict{Independent: ok} // want "cannot trace to proof-kernel evidence"
}

// A local holding kernel evidence is itself evidence.
func forwardLocal(e *Engine) Verdict {
	v := e.CheckIndependence()
	ok := v.Independent
	return Verdict{Independent: ok}
}

// Join over branches: evidence on only one arm does not survive.
func halfProven(e *Engine, c bool) Verdict {
	ok := true
	if c {
		ok = e.CheckIndependence().Independent
	}
	return Verdict{Independent: ok} // want "cannot trace to proof-kernel evidence"
}

// Evidence on every path survives the join (the zero value false is
// evidence too).
func bothProven(e *Engine, c bool) Verdict {
	ok := false
	if c {
		ok = e.CheckIndependence().Independent
	}
	return Verdict{Independent: ok}
}

// Conjunction can only lower a sound verdict; one evidence operand is
// enough. Disjunction can raise it, so both operands must be evidence.
func narrowed(e *Engine, extra bool) Verdict {
	return Verdict{Independent: e.CheckIndependence().Independent && extra}
}

func widened(e *Engine, extra bool) Verdict {
	return Verdict{Independent: e.CheckIndependence().Independent || extra} // want "cannot trace to proof-kernel evidence"
}

// A helper every return of which is evidence gets a proven summary.
func viaHelper(e *Engine) Verdict {
	return Verdict{Independent: helperProven(e)}
}

func helperProven(e *Engine) bool {
	if e == nil {
		return false
	}
	return e.CheckIndependence().Independent
}

// A helper that fabricates its bool has an unproven summary.
func viaBadHelper() Verdict {
	return Verdict{Independent: helperUnproven()} // want "cannot trace to proof-kernel evidence"
}

func helperUnproven() bool { return true }

// Positional verdict literals hide which value lands in Independent.
func positional() Verdict {
	return Verdict{true, 1} // want "positional composite literal of verdict type"
}

// Taking the field's address would let writes bypass the analysis.
func escape(v *Verdict) *bool {
	return &v.Independent // want "escapes the dataflow proof"
}
