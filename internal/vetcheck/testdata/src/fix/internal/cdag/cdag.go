// Firing and non-firing fixtures for budgetpoints (cdag is a budget
// package) and verdictflow (Verdict is a configured verdict type and
// CheckIndependence is in the proof kernel); see flow.go for the
// flow-sensitive verdictflow fixtures.
package cdag

import "example.com/fix/internal/guard"

// Verdict mirrors the real verdict struct.
type Verdict struct {
	Independent bool
	K           int
}

// Engine carries the budget like the real CDAG engine.
type Engine struct{ b *guard.Budget }

// CheckIndependence is the proof kernel: the axiom the rest of the
// module's verdict flow is checked against.
func (e *Engine) CheckIndependence() Verdict {
	return Verdict{Independent: true, K: 1}
}

func shortcut() Verdict {
	return Verdict{Independent: true} // want "cannot trace to proof-kernel evidence"
}

func conservative() Verdict {
	return Verdict{Independent: false} // false is sound anywhere
}

func flip(v *Verdict, val bool) {
	v.Independent = val // want "cannot trace to proof-kernel evidence"
}

func clear(v *Verdict) {
	v.Independent = false
}

// --- budgetpoints ---

func metered(e *Engine, n int) int {
	e.b.Point("cdag.metered")
	if n == 0 {
		return 0
	}
	return metered(e, n-1)
}

func unmetered(n int) int { // want "never consults the guard.Budget"
	if n == 0 {
		return 0
	}
	return unmetered(n - 1)
}

func straight(n int) int { return n + 1 }

// Mutual recursion where only one side ticks, via a helper: both are
// in the SCC and both reach the budget, so neither fires.
func ping(e *Engine, n int) int {
	if n == 0 {
		return 0
	}
	return pong(e, n-1)
}

func pong(e *Engine, n int) int {
	tick(e)
	if n == 0 {
		return 0
	}
	return ping(e, n-1)
}

func tick(e *Engine) { e.b.Tick() }

// Mutual recursion with no budget anywhere: both fire.
func evenHop(n int) bool { // want "never consults the guard.Budget"
	if n == 0 {
		return true
	}
	return oddHop(n - 1)
}

func oddHop(n int) bool { // want "never consults the guard.Budget"
	if n == 0 {
		return false
	}
	return evenHop(n - 1)
}

// A recursive closure is recursion of its enclosing declaration.
func closureLoop(n int) int { // want "never consults the guard.Budget"
	var walk func(int) int
	walk = func(m int) int {
		if m == 0 {
			return 0
		}
		return walk(m - 1)
	}
	return walk(n)
}

// The same shape with a budget call inside the closure is clean.
func meteredClosure(e *Engine, n int) int {
	var walk func(int) int
	walk = func(m int) int {
		e.b.Tick()
		if m == 0 {
			return 0
		}
		return walk(m - 1)
	}
	return walk(n)
}
