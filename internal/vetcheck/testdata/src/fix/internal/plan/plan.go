// Package plan is the fixture's stand-in for the real prepared-plan
// package: frozenartifact treats CompiledExpr as immutable outside
// this home package, so only the shape matters — an exported field
// and accessors handing out shared views, like the real artifact.
package plan

import "example.com/fix/internal/bitset"

// CompiledExpr mirrors the real cached plan: fingerprints, the
// k-factor, and verdict rows exposed as shared views.
type CompiledExpr struct {
	PairFP    string
	k         int
	ret       bitset.Set
	witnesses []string
}

// Ret returns the shared verdict endpoint row.
func (ce *CompiledExpr) Ret() bitset.Set { return ce.ret }

// Witnesses returns the shared conflict-evidence slice.
func (ce *CompiledExpr) Witnesses() []string { return ce.witnesses }

// K returns the multiplicity the plan was built at.
func (ce *CompiledExpr) K() int { return ce.k }

// New is the constructor; building the rows here, inside the defining
// package, is the one legal mutation site.
func New(k int) *CompiledExpr {
	ce := &CompiledExpr{k: k, ret: make(bitset.Set, 4)}
	ce.ret.Add(1)
	return ce
}
