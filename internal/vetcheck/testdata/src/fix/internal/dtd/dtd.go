// Package dtd is the fixture's stand-in for the real schema package:
// compilecache matches NewCompiled by name and module-relative path,
// so only the shape matters.
package dtd

// DTD mirrors the real parsed schema.
type DTD struct{ Name string }

// Compiled mirrors the real compiled artifact.
type Compiled struct{ d *DTD }

// NewCompiled is the raw constructor; calling it here, inside the
// defining package, is the one legal site.
func NewCompiled(d *DTD) (*Compiled, error) { return &Compiled{d: d}, nil }

// Compile is the cached entry point everyone else must use.
func Compile(d *DTD) (*Compiled, error) { return NewCompiled(d) }
