// Package dtd is the fixture's stand-in for the real schema package:
// compilecache matches NewCompiled by name and module-relative path,
// and frozenartifact treats Compiled as immutable outside this home
// package, so only the shape matters.
package dtd

import "example.com/fix/internal/bitset"

// DTD mirrors the real parsed schema.
type DTD struct{ Name string }

// Compiled mirrors the real compiled artifact: an exported field and
// accessors handing out shared views, like the real one.
type Compiled struct {
	d     *DTD
	Label string
	kids  []int
	reach bitset.Set
}

// Children returns the shared child-symbol row.
func (c *Compiled) Children(t int) []int { return c.kids }

// Reach returns the shared reachability row.
func (c *Compiled) Reach(t int) bitset.Set { return c.reach }

// NewCompiled is the raw constructor; calling it here, inside the
// defining package, is the one legal site.
func NewCompiled(d *DTD) (*Compiled, error) { return &Compiled{d: d}, nil }

// Compile is the cached entry point everyone else must use.
func Compile(d *DTD) (*Compiled, error) { return NewCompiled(d) }
