// Package bitset is the fixture's stand-in for the real bitset rows:
// frozenartifact matches mutators by name and home package, so only
// the shape matters. Set is a slice, so even value-receiver mutators
// write the shared backing array.
package bitset

type Set []uint64

func (s Set) Add(i int) { s[i/64] |= 1 << (i % 64) }

func (s Set) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}
