// Command fixd proves the package-main exemptions: minting the root
// context is main's job.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
