// Module-root fixtures: the public Report verdict, addressed by bare
// name in the configuration. reportFromResult is no longer
// allowlisted — verdictflow verifies it because the value it forwards
// is read from an already-checked verdict.
package fix

import "example.com/fix/internal/core"

// Report mirrors the real public verdict struct.
type Report struct {
	Independent bool
	Method      string
}

// reportFromResult forwards proven evidence: reading .Independent
// from a verdict-typed value is sound by induction over all checked
// write sites.
func reportFromResult(r core.Result) Report {
	return Report{Independent: r.Independent, Method: "chains"}
}

func fabricateReport() Report {
	return Report{Independent: true} // want "cannot trace to proof-kernel evidence"
}

func conservativeReport() Report {
	return Report{Independent: false}
}
