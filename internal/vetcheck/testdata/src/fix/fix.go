// Module-root fixtures: the public Report verdict and its allowlisted
// constructor, addressed by bare name in the configuration.
package fix

// Report mirrors the real public verdict struct.
type Report struct {
	Independent bool
	Method      string
}

// reportFromResult is the allowlisted root proof function.
func reportFromResult(ok bool) Report {
	return Report{Independent: ok, Method: "chains"}
}

func fabricateReport() Report {
	return Report{Independent: true} // want "outside the proof-function allowlist"
}

func conservativeReport() Report {
	return Report{Independent: false}
}
