package vetcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Rel is the module-relative import path: "" for the module root,
	// "internal/cdag" for xqindep/internal/cdag. Checks key their
	// scoping rules on Rel so the same configuration applies to the
	// real module and to testdata fixture modules alike.
	Rel   string
	Path  string
	Name  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the loaded module: every package, sharing one FileSet.
type Module struct {
	Path string // module path from go.mod
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks every package of the module rooted at dir using
// only the standard library: `go list -e -export -deps -json ./...`
// supplies compiled export data for all dependencies, the module's own
// packages are parsed from source (with comments, so pragmas work) and
// checked against that export data. Test files are excluded by
// construction — GoFiles never contains them — which is what gives
// every check its "non-test code" scope for free.
func Load(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json", "./...")
	cmd.Dir = abs
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("vetcheck: go list in %s: %v\n%s", abs, err, stderr.String())
	}

	exports := map[string]string{}
	var mods []listPkg
	modPath := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("vetcheck: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("vetcheck: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module != nil && modPath == "" {
			modPath = p.Module.Path
		}
		mods = append(mods, p)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("vetcheck: no packages found under %s", abs)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	m := &Module{Path: modPath, Dir: abs, Fset: fset}
	// Intra-module imports must resolve to export data too; go list
	// -export compiles them, so the lookup above covers both cases.
	for _, p := range mods {
		var files []*ast.File
		for _, g := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("vetcheck: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Types:      map[ast.Expr]types.TypeAndValue{},
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("vetcheck: type-checking %s: %v", p.ImportPath, err)
		}
		rel := strings.TrimPrefix(p.ImportPath, modPath)
		rel = strings.TrimPrefix(rel, "/")
		m.Pkgs = append(m.Pkgs, &Package{
			Rel:   rel,
			Path:  p.ImportPath,
			Name:  tp.Name(),
			Files: files,
			Pkg:   tp,
			Info:  info,
		})
	}
	return m, nil
}
