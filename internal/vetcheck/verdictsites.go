package vetcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// checkVerdictSites guards the soundness theorem itself (Theorems
// 3.2/5.1 via DESIGN.md §5): a verdict struct's Independent field may
// only become true inside the allowlisted proof functions — the sites
// that actually carry the paper's argument. Setting it to the literal
// false is conservative and therefore legal anywhere; any other write
// outside the allowlist is a shortcut past the proof and fails the
// build.
func checkVerdictSites(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			walkWithDecl(f, func(n ast.Node, decl *ast.FuncDecl) {
				switch node := n.(type) {
				case *ast.CompositeLit:
					checkVerdictLit(p, pkg, node, decl)
				case *ast.AssignStmt:
					checkVerdictAssign(p, pkg, node, decl)
				}
			})
		}
	}
}

// verdictType reports whether t (possibly behind a pointer) is one of
// the configured verdict structs.
func (p *pass) verdictType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, pkg := range p.mod.Pkgs {
		if pkg.Pkg == obj.Pkg() {
			return p.cfg.VerdictTypes[relName(pkg, obj.Name())]
		}
	}
	return false
}

// constFalse reports whether e is a constant-false expression.
func constFalse(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

func (p *pass) inProofFunc(pkg *Package, decl *ast.FuncDecl) bool {
	return decl != nil && p.cfg.ProofFuncs[relName(pkg, decl.Name.Name)]
}

func checkVerdictLit(p *pass, pkg *Package, lit *ast.CompositeLit, decl *ast.FuncDecl) {
	tv, ok := pkg.Info.Types[lit]
	if !ok || !p.verdictType(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional verdict literals hide which value lands in
			// Independent; demand the proof allowlist outright.
			if !p.inProofFunc(pkg, decl) {
				p.report("verdictsites", lit.Pos(),
					"positional composite literal of verdict type outside a proof function; use keyed fields")
			}
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Independent" {
			continue
		}
		if constFalse(pkg, kv.Value) || p.inProofFunc(pkg, decl) {
			continue
		}
		p.report("verdictsites", kv.Pos(),
			"Independent set to a non-false value outside the proof-function allowlist (see DESIGN.md §5)")
	}
}

func checkVerdictAssign(p *pass, pkg *Package, as *ast.AssignStmt, decl *ast.FuncDecl) {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Independent" {
			continue
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !p.verdictType(tv.Type) {
			continue
		}
		if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) && constFalse(pkg, as.Rhs[i]) {
			continue
		}
		if p.inProofFunc(pkg, decl) {
			continue
		}
		p.report("verdictsites", as.Pos(),
			"Independent assigned a non-false value outside the proof-function allowlist (see DESIGN.md §5)")
	}
}
