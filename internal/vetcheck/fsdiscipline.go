package vetcheck

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// checkFSDiscipline keeps the durable-state layer crash-testable:
// statefile's guarantees are proven by replaying seeded fault schedules
// through the injectable FS seam, so every filesystem touch in the
// configured packages must go through that seam. Ambient os file
// *functions* (os.OpenFile, os.Rename, os.Remove, ...) are confined to
// the allowlisted adapter files — the one place the seam is bound to
// the real filesystem. Constants (os.O_APPEND), types (os.File,
// os.FileMode) and error values stay usable everywhere: only a
// selector resolving to a *types.Func of package os fires.
func checkFSDiscipline(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		if !p.cfg.FSPackages[pkg.Rel] {
			continue
		}
		for _, f := range pkg.Files {
			base := filepath.Base(p.mod.Fset.Position(f.Pos()).Filename)
			if p.cfg.FSAllowFiles[base] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "os" {
					return true
				}
				if _, ok := pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
					return true // constants, types and error values stay legal
				}
				p.report("fsdiscipline", sel.Pos(),
					"ambient os.%s in %s bypasses the injectable FS seam; route it through the FS interface (os adapters belong in %s)",
					sel.Sel.Name, pkg.Rel, allowedFiles(p.cfg.FSAllowFiles))
				return true
			})
		}
	}
}

func allowedFiles(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
