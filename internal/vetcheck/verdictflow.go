package vetcheck

// checkVerdictFlow guards the soundness theorem itself (Thm 3.2 via
// DESIGN.md §5/§12): every value that reaches a verdict struct's
// Independent field must be *evidence* — dominated, on all CFG paths,
// by a value the proof kernel produced. The kernel (Config.ProofFuncs)
// is the small set of engine functions that actually carry the
// paper's argument; everything else — core's ladder, the server glue,
// the public Report constructors — is verified by dataflow instead of
// being allowlisted, which is what catches laundering through locals,
// struct copies and helper returns that a name-based allowlist
// cannot see.
//
// The evidence judgment over an expression, given the flow state:
//
//   - the constant false is evidence (conservatism is always sound);
//   - reading .Independent from any verdict-typed value is evidence —
//     sound by induction, because every write site module-wide is
//     itself checked (including across packages: verdict types match
//     by module-relative path, not type identity, so export-data
//     imports cannot hide a write);
//   - a local variable is evidence when the flow analysis proves it
//     holds evidence on every path reaching the use;
//   - a call of an in-module helper is evidence when a per-function
//     summary (computed to fixpoint over the call graph, coinductively
//     for recursion) proves every return statement yields evidence;
//   - e1 && e2 is evidence when either operand is (conjunction can
//     only lower a sound verdict); e1 || e2 only when both are;
//   - everything else — the literal true, negation, params, channel
//     receives, foreign calls — is unproven.
//
// Writing an unproven value into Independent (by assignment or keyed
// composite literal), a positional verdict literal, and taking the
// address of an Independent field are findings outside the kernel.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// vfState maps local objects proven to hold evidence; absence means
// unproven. Join over paths is therefore set intersection.
type vfState map[types.Object]bool

var vfFlow = flowFuncs[vfState]{
	copy: func(s vfState) vfState {
		out := make(vfState, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	},
	join: func(a, b vfState) vfState {
		out := vfState{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	},
	equal: func(a, b vfState) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	},
}

func checkVerdictFlow(p *pass) {
	p.ensureGraph()
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, u := range unitsOf(fd) {
					p.vfCheckUnit(pkg, u)
				}
			}
		}
	}
}

// verdictType reports whether t (possibly behind a pointer) is one of
// the configured verdict structs, matched by module-relative path so
// uses through export data are recognized too.
func (p *pass) verdictType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	rel, ok := p.relOfTypesPkg(obj.Pkg())
	if !ok {
		return false
	}
	return p.cfg.VerdictTypes[relKey(rel, obj.Name())]
}

func (p *pass) inProofFunc(pkg *Package, decl *ast.FuncDecl) bool {
	return decl != nil && p.cfg.ProofFuncs[relName(pkg, decl.Name.Name)]
}

// vfCheckUnit runs the evidence flow over one unit and reports every
// unproven verdict write. Units inside the proof kernel are exempt —
// they are the axioms the rest of the module is checked against.
func (p *pass) vfCheckUnit(pkg *Package, u funcUnit) {
	if p.inProofFunc(pkg, u.decl) {
		return
	}
	g := buildCFG(pkg, u.body)
	entry := p.vfEntryState(pkg, u)
	in := forwardFlow(g, entry, p.vfFlowFuncs(pkg))
	for _, b := range reachableBlocks(g, in) {
		s := vfFlow.copy(in[b])
		for _, n := range b.nodes {
			p.vfReportNode(pkg, s, n)
			s = p.vfTransfer(pkg, s, n)
		}
	}
}

// vfEntryState seeds the flow: named bool results start as evidence
// (their zero value is the conservative false); parameters and
// captured variables start unproven.
func (p *pass) vfEntryState(pkg *Package, u funcUnit) vfState {
	s := vfState{}
	var results *ast.FieldList
	if u.lit != nil {
		results = u.lit.Type.Results
	} else {
		results = u.decl.Type.Results
	}
	if results == nil {
		return s
	}
	for _, f := range results.List {
		for _, name := range f.Names {
			if obj := pkg.Info.Defs[name]; obj != nil && isBoolType(obj.Type()) {
				s[obj] = true
			}
		}
	}
	return s
}

func (p *pass) vfFlowFuncs(pkg *Package) flowFuncs[vfState] {
	f := vfFlow
	f.transfer = func(s vfState, n ast.Node) vfState {
		return p.vfTransfer(pkg, s, n)
	}
	return f
}

func isBoolType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsBoolean != 0
}

// vfTransfer updates local evidence facts for one node.
func (p *pass) vfTransfer(pkg *Package, s vfState, n ast.Node) vfState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		p.vfAssign(pkg, s, n)
	case *ast.DeclStmt:
		gen, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return s
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil || !isBoolType(obj.Type()) {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					s[obj] = true // zero value: false, evidence
				case len(vs.Values) == len(vs.Names):
					setEvid(s, obj, p.vfEvid(pkg, s, vs.Values[i]))
				default:
					setEvid(s, obj, p.vfCallResultEvid(pkg, vs.Values[0], i))
				}
			}
		}
	case *rangeMarker:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					delete(s, obj)
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					delete(s, obj)
				}
			}
		}
	}
	return s
}

func setEvid(s vfState, obj types.Object, evid bool) {
	if evid {
		s[obj] = true
	} else {
		delete(s, obj)
	}
}

// vfAssign applies an assignment's effect on tracked locals. Verdict
// field writes are judged in vfReportNode, not here.
func (p *pass) vfAssign(pkg *Package, s vfState, as *ast.AssignStmt) {
	multiCall := len(as.Lhs) > 1 && len(as.Rhs) == 1
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || !isBoolType(obj.Type()) {
			continue
		}
		switch {
		case multiCall:
			setEvid(s, obj, p.vfCallResultEvid(pkg, as.Rhs[0], i))
		case len(as.Lhs) == len(as.Rhs):
			setEvid(s, obj, p.vfEvid(pkg, s, as.Rhs[i]))
		default:
			// Comma-ok forms, tuple mismatches: unproven.
			delete(s, obj)
		}
	}
}

// vfEvid is the evidence judgment for a single-valued expression.
func (p *pass) vfEvid(pkg *Package, s vfState, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if constFalse(pkg, e) {
		return true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return p.vfEvid(pkg, s, e.X)
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		return obj != nil && s[obj]
	case *ast.SelectorExpr:
		if e.Sel.Name != "Independent" {
			return false
		}
		tv, ok := pkg.Info.Types[e.X]
		return ok && p.verdictType(tv.Type)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return p.vfEvid(pkg, s, e.X) || p.vfEvid(pkg, s, e.Y)
		case token.LOR:
			return p.vfEvid(pkg, s, e.X) && p.vfEvid(pkg, s, e.Y)
		}
		return false
	case *ast.CallExpr:
		return p.vfCallResultEvid(pkg, e, 0)
	}
	return false
}

// constFalse reports whether e is a constant-false expression.
func constFalse(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	b, ok := boolConst(tv)
	return ok && !b
}

func boolConst(tv types.TypeAndValue) (bool, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// vfCallResultEvid consults the callee's evidence summary for result
// index i. Only direct calls of in-module declared functions have
// summaries; everything else is unproven.
func (p *pass) vfCallResultEvid(pkg *Package, e ast.Expr, i int) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sum := p.vfSummary(fn)
	return i < len(sum) && sum[i]
}

// vfSummary computes (memoized) whether each result of fn is evidence
// on every return path. Recursion is resolved coinductively: an
// in-progress callee is assumed to deliver evidence, which yields the
// greatest fixpoint — sound, because any concrete execution bottoms
// out in a return that is judged on its own.
func (p *pass) vfSummary(fn *types.Func) []bool {
	if sum, ok := p.vfSummaries[fn]; ok {
		return sum
	}
	decl := p.declOf[types.Object(fn)]
	if decl == nil || decl.Body == nil {
		p.vfSummaries[fn] = nil
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		p.vfSummaries[fn] = nil
		return nil
	}
	nres := sig.Results().Len()
	anyBool := false
	for i := 0; i < nres; i++ {
		if isBoolType(sig.Results().At(i).Type()) {
			anyBool = true
		}
	}
	if !anyBool {
		p.vfSummaries[fn] = nil
		return nil
	}
	pkg := p.pkgOfObj(fn)
	if pkg == nil {
		p.vfSummaries[fn] = nil
		return nil
	}
	// Optimistic seed for recursive helpers (coinduction).
	seed := make([]bool, nres)
	for i := 0; i < nres; i++ {
		seed[i] = isBoolType(sig.Results().At(i).Type())
	}
	p.vfSummaries[fn] = seed

	u := funcUnit{decl: decl, body: decl.Body}
	g := buildCFG(pkg, u.body)
	entry := p.vfEntryState(pkg, u)
	in := forwardFlow(g, entry, p.vfFlowFuncs(pkg))

	namedResults := namedResultObjs(pkg, decl)
	proven := make([]bool, nres)
	copy(proven, seed)
	sawReturn := false
	for _, b := range reachableBlocks(g, in) {
		s := vfFlow.copy(in[b])
		for _, n := range b.nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				sawReturn = true
				p.vfFoldReturn(pkg, s, ret, namedResults, proven)
			}
			s = p.vfTransfer(pkg, s, n)
		}
	}
	if !sawReturn {
		// No reachable return: vacuously keep the seed.
		return seed
	}
	p.vfSummaries[fn] = proven
	return proven
}

func namedResultObjs(pkg *Package, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Results == nil {
		return nil
	}
	for _, f := range decl.Type.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

// vfFoldReturn ANDs one return statement's evidence into proven.
func (p *pass) vfFoldReturn(pkg *Package, s vfState, ret *ast.ReturnStmt, named []types.Object, proven []bool) {
	switch {
	case len(ret.Results) == 0:
		// Naked return: named results carry their flow state.
		for i := range proven {
			ok := i < len(named) && named[i] != nil && s[named[i]]
			proven[i] = proven[i] && ok
		}
	case len(ret.Results) == 1 && len(proven) > 1:
		// return f() forwarding a tuple.
		for i := range proven {
			proven[i] = proven[i] && p.vfCallResultEvid(pkg, ret.Results[0], i)
		}
	default:
		for i := range proven {
			if i < len(ret.Results) {
				proven[i] = proven[i] && p.vfEvid(pkg, s, ret.Results[i])
			}
		}
	}
}

// vfReportNode flags unproven verdict writes in one node, judged in
// the state holding at that node.
func (p *pass) vfReportNode(pkg *Package, s vfState, n ast.Node) {
	inspectShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CompositeLit:
			p.vfReportLit(pkg, s, x)
		case *ast.AssignStmt:
			p.vfReportAssign(pkg, s, x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "Independent" {
					if tv, ok := pkg.Info.Types[sel.X]; ok && p.verdictType(tv.Type) {
						p.report("verdictflow", x.Pos(),
							"address of a verdict's Independent field escapes the dataflow proof; write through the field directly")
					}
				}
			}
		}
		return true
	})
}

func (p *pass) vfReportLit(pkg *Package, s vfState, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok || !p.verdictType(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional verdict literals hide which value lands in
			// Independent; demand the proof kernel outright.
			p.report("verdictflow", lit.Pos(),
				"positional composite literal of verdict type outside the proof kernel; use keyed fields")
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Independent" {
			continue
		}
		if !p.vfEvid(pkg, s, kv.Value) {
			p.report("verdictflow", kv.Pos(),
				"Independent set to a value the dataflow analysis cannot trace to proof-kernel evidence (see DESIGN.md §12)")
		}
	}
}

func (p *pass) vfReportAssign(pkg *Package, s vfState, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Independent" {
			continue
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !p.verdictType(tv.Type) {
			continue
		}
		evid := false
		if len(as.Lhs) == len(as.Rhs) && i < len(as.Rhs) {
			evid = p.vfEvid(pkg, s, as.Rhs[i])
		}
		if !evid {
			p.report("verdictflow", as.Pos(),
				"Independent assigned a value the dataflow analysis cannot trace to proof-kernel evidence (see DESIGN.md §12)")
		}
	}
}
