package vetcheck

// checkLockDiscipline runs the held-locks dataflow over every function
// of the configured service packages and enforces three invariants the
// chaos suites can only sample:
//
//   - no double acquisition: taking a mutex that may already be held
//     on some path — directly or through a callee whose interprocedural
//     summary says it acquires the same lock — deadlocks Go's
//     non-reentrant sync.Mutex;
//   - no blocking while holding: a lock held across a bare channel
//     operation, a select without a default, a WaitGroup/Cond wait, or
//     a guard.Budget point (where faultinject can inject an unbounded
//     stall) wedges every other goroutine needing that lock;
//   - a global acquisition order: each "acquire B while holding A"
//     observation is an edge A→B in a module-wide order graph; a cycle
//     means two goroutines can acquire the same pair in opposite
//     orders and deadlock.
//
// Locks are abstracted to (owning type, field) tokens — e.g.
// internal/server.Server.admitMu — so any two receivers of the same
// type unify; that is conservative for the singleton locks this
// module uses. RLock/RUnlock count as the same token: read locks
// still order against writers, and Go's RWMutex read side is not
// reentrant in the presence of a blocked writer. Channel operations
// in a select that has a default clause are non-blocking and exempt.
// A function that may return while holding a lock with no deferred
// unlock is reported as a leak.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ldState maps held lock tokens to their acquisition position. Join
// is union (may-held), conservative for every rule above.
type ldState map[string]token.Pos

var ldFlow = flowFuncs[ldState]{
	copy: func(s ldState) ldState {
		out := make(ldState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	join: func(a, b ldState) ldState {
		out := make(ldState, len(a)+len(b))
		for k, v := range a {
			out[k] = v
		}
		for k, v := range b {
			if _, ok := out[k]; !ok {
				out[k] = v
			}
		}
		return out
	},
	equal: func(a, b ldState) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	},
}

// ldOrderEdge is one observed "acquire to while holding from".
type ldOrderEdge struct {
	from, to string
}

func checkLockDiscipline(p *pass) {
	p.ensureGraph()
	p.ldComputeSummaries()
	edges := map[ldOrderEdge]token.Pos{}
	for _, pkg := range p.mod.Pkgs {
		if !p.cfg.LockPackages[pkg.Rel] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, u := range unitsOf(fd) {
					p.ldCheckUnit(pkg, u, edges)
				}
			}
		}
	}
	p.ldReportInversions(edges)
}

// ---- lock tokens ----

// mutexOp classifies a call as a sync.Mutex/RWMutex method.
type mutexOp int

const (
	opNone mutexOp = iota
	opLock         // Lock, RLock, TryLock, TryRLock
	opUnlock
)

// ldMutexOp resolves call to (op, token). The token names the lock by
// its owning type and field: "rel.Type.field", or "rel.var" for a
// package-level mutex, or "local:name" for a local variable.
func (p *pass) ldMutexOp(pkg *Package, call *ast.CallExpr) (mutexOp, string, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", false
	}
	fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", false
	}
	var op mutexOp
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return opNone, "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return opNone, "", false
	}
	rt := recv.Type()
	if ptr, okp := rt.(*types.Pointer); okp {
		rt = ptr.Elem()
	}
	named, okn := rt.(*types.Named)
	if !okn || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return opNone, "", false
	}
	return op, p.ldToken(pkg, fun.X), true
}

// ldToken names the mutex expression x (the receiver of Lock/Unlock).
func (p *pass) ldToken(pkg *Package, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		// owner.field — name by the owner's type.
		if tv, ok := pkg.Info.Types[x.X]; ok {
			if name, ok := p.ldTypeName(tv.Type); ok {
				return name + "." + x.Sel.Name
			}
		}
		return "expr." + x.Sel.Name
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj != nil && obj.Parent() == obj.Pkg().Scope() {
			return relName(pkg, obj.Name()) // package-level mutex
		}
		return "local:" + x.Name
	}
	return fmt.Sprintf("expr@%d", x.Pos())
}

// ldTypeName renders a named type as its module-relative key.
func (p *pass) ldTypeName(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	rel, ok := p.relOfTypesPkg(obj.Pkg())
	if !ok {
		return obj.Name(), true
	}
	return relKey(rel, obj.Name()), true
}

// ---- interprocedural summaries ----

// ldSummary says which lock tokens a call of the function may acquire
// (transitively) and whether it may block on a channel, wait, or
// budget point.
type ldSummary struct {
	acquires map[string]bool
	blocks   string // first blocking reason, "" if none
}

// ldComputeSummaries fills p.ldSummaries for every module function:
// direct facts from a syntactic scan, then a transitive closure over
// the call graph (reverse-postorder-free fixpoint; the graph is small).
func (p *pass) ldComputeSummaries() {
	if p.ldSummaries != nil {
		return
	}
	p.ldSummaries = map[types.Object]*ldSummary{}
	for _, n := range p.graph.nodes {
		if n.pkg == nil || n.decl == nil || n.decl.Body == nil {
			continue
		}
		p.ldSummaries[n.obj] = p.ldDirectFacts(n.pkg, n.decl)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.graph.nodes {
			sum := p.ldSummaries[n.obj]
			if sum == nil {
				continue
			}
			for callee := range n.out {
				csum := p.ldSummaries[callee.obj]
				if csum == nil {
					continue
				}
				for tok := range csum.acquires {
					if !sum.acquires[tok] {
						sum.acquires[tok] = true
						changed = true
					}
				}
				if sum.blocks == "" && csum.blocks != "" {
					sum.blocks = fmt.Sprintf("calls %s, which %s", callee.obj.Name(), csum.blocks)
					changed = true
				}
			}
		}
	}
}

// ldDirectFacts scans one declaration body (closures included, since
// an invoked closure blocks its caller; goroutine bodies and deferred
// calls excluded — they do not block this call).
func (p *pass) ldDirectFacts(pkg *Package, decl *ast.FuncDecl) *ldSummary {
	sum := &ldSummary{acquires: map[string]bool{}}
	// Channel ops guarding a select clause are not blocking points on
	// their own: the select is judged as a whole by its default.
	exempt := map[ast.Node]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if ok && cc.Comm != nil {
				markCommExempt(cc.Comm, exempt)
			}
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if !exempt[n] {
				sum.noteBlock("performs a channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[n] {
				sum.noteBlock("performs a channel receive")
			}
		case *ast.SelectStmt:
			if !(&selectMarker{n}).hasDefault() {
				sum.noteBlock("selects without a default")
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					sum.noteBlock("ranges over a channel")
				}
			}
		case *ast.CallExpr:
			if op, tok, ok := p.ldMutexOp(pkg, n); ok && op == opLock {
				sum.acquires[tok] = true
			}
			if reason := p.ldBlockingCall(pkg, n); reason != "" {
				sum.noteBlock(reason)
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	return sum
}

// markCommExempt marks the channel operation of one select comm
// clause: the SendStmt itself, or the receive UnaryExpr inside an
// ExprStmt / AssignStmt guard.
func markCommExempt(comm ast.Stmt, exempt map[ast.Node]bool) {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		exempt[comm] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			exempt[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range comm.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				exempt[u] = true
			}
		}
	}
}

func (s *ldSummary) noteBlock(reason string) {
	if s.blocks == "" {
		s.blocks = reason
	}
}

// ldBlockingCall reports why call is a blocking point ("" if not):
// guard.Budget methods and guard.FirePoint (faultinject can stall
// there without bound), WaitGroup.Wait, Cond.Wait.
func (p *pass) ldBlockingCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if isBudgetMethod(fn) {
		return fmt.Sprintf("reaches guard.Budget.%s (a faultinject stall point)", fn.Name())
	}
	if isGuardPkg(fn.Pkg()) && fn.Name() == "FirePoint" {
		return "reaches guard.FirePoint (a faultinject stall point)"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
		return "waits on a sync." + recvTypeName(fn) + ""
	}
	return ""
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// ---- per-function flow ----

func (p *pass) ldCheckUnit(pkg *Package, u funcUnit, edges map[ldOrderEdge]token.Pos) {
	g := buildCFG(pkg, u.body)
	f := ldFlow
	f.transfer = func(s ldState, n ast.Node) ldState {
		return p.ldTransfer(pkg, g, s, n)
	}
	in := forwardFlow(g, ldState{}, f)
	for _, b := range reachableBlocks(g, in) {
		s := ldFlow.copy(in[b])
		for _, n := range b.nodes {
			p.ldReportNode(pkg, g, s, n, edges)
			s = p.ldTransfer(pkg, g, s, n)
		}
	}
	p.ldReportLeaks(pkg, g, in)
}

// ldTransfer tracks the held set across one node.
func (p *pass) ldTransfer(pkg *Package, g *funcCFG, s ldState, n ast.Node) ldState {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return s // deferred unlocks run at return; handled by ldReportLeaks
	}
	inspectShallow(n, func(x ast.Node) bool {
		if _, isDefer := x.(*ast.DeferStmt); isDefer {
			return false
		}
		if _, isGo := x.(*ast.GoStmt); isGo {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, tok, ok := p.ldMutexOp(pkg, call)
		if !ok {
			return true
		}
		switch op {
		case opLock:
			s[tok] = call.Pos()
		case opUnlock:
			delete(s, tok)
		}
		return true
	})
	return s
}

// ldReportNode flags violations at one node given the held set.
func (p *pass) ldReportNode(pkg *Package, g *funcCFG, s ldState, n ast.Node, edges map[ldOrderEdge]token.Pos) {
	if m, ok := n.(*selectMarker); ok {
		if len(s) > 0 && !m.hasDefault() {
			p.report("lockdiscipline", m.Pos(),
				"select without a default while holding %s: a stalled peer wedges the lock", heldList(s))
		}
		return
	}
	if m, ok := n.(*rangeMarker); ok {
		if len(s) > 0 {
			if tv, ok := pkg.Info.Types[m.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					p.report("lockdiscipline", m.Pos(),
						"ranging over a channel while holding %s", heldList(s))
				}
			}
		}
		// Fall through to scan the ranged expression for calls.
	}
	if stmt, ok := n.(ast.Stmt); ok {
		if _, isComm := g.commStmts[stmt]; isComm {
			// A select clause guard: its blocking behavior was judged
			// at the selectMarker; skip the channel-op scan but still
			// walk nested calls in its operands.
			n = commOperands(stmt)
			if n == nil {
				return
			}
		}
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if len(s) > 0 {
				p.report("lockdiscipline", x.Pos(),
					"channel send while holding %s", heldList(s))
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(s) > 0 {
				p.report("lockdiscipline", x.Pos(),
					"channel receive while holding %s", heldList(s))
			}
		case *ast.CallExpr:
			p.ldReportCall(pkg, s, x, edges)
		}
		return true
	})
}

// commOperands returns the sub-expression of a comm guard worth
// scanning for calls (the value side; the channel op itself is
// exempt).
func commOperands(stmt ast.Stmt) ast.Node {
	switch stmt := stmt.(type) {
	case *ast.SendStmt:
		return stmt.Value
	case *ast.AssignStmt:
		return nil // v := <-ch: nothing but the receive
	case *ast.ExprStmt:
		return nil // <-ch
	}
	return stmt
}

func (p *pass) ldReportCall(pkg *Package, s ldState, call *ast.CallExpr, edges map[ldOrderEdge]token.Pos) {
	if op, tok, ok := p.ldMutexOp(pkg, call); ok {
		switch op {
		case opLock:
			if pos, held := s[tok]; held {
				p.report("lockdiscipline", call.Pos(),
					"%s acquired while already held (since %s): sync mutexes are not reentrant",
					tok, p.mod.Fset.Position(pos))
			}
			for held := range s {
				if held == tok {
					continue
				}
				e := ldOrderEdge{from: held, to: tok}
				if _, ok := edges[e]; !ok {
					edges[e] = call.Pos()
				}
			}
		case opUnlock:
			if _, held := s[tok]; !held {
				p.report("lockdiscipline", call.Pos(),
					"%s unlocked but not provably held on any path here", tok)
			}
		}
		return
	}
	if len(s) == 0 {
		return
	}
	if reason := p.ldBlockingCall(pkg, call); reason != "" {
		p.report("lockdiscipline", call.Pos(),
			"blocking point while holding %s: %s", heldList(s), reason)
		return
	}
	// In-module callee: consult its interprocedural summary.
	callee := p.ldCalleeNode(pkg, call)
	if callee == nil {
		return
	}
	sum := p.ldSummaries[callee.obj]
	if sum == nil {
		return
	}
	acq := sortedKeysList(sum.acquires)
	for _, tok := range acq {
		if pos, held := s[tok]; held {
			p.report("lockdiscipline", call.Pos(),
				"call of %s may re-acquire %s already held (since %s)",
				callee.obj.Name(), tok, p.mod.Fset.Position(pos))
		}
		for held := range s {
			if held == tok {
				continue
			}
			e := ldOrderEdge{from: held, to: tok}
			if _, ok := edges[e]; !ok {
				edges[e] = call.Pos()
			}
		}
	}
	if sum.blocks != "" {
		p.report("lockdiscipline", call.Pos(),
			"call of %s while holding %s: it %s", callee.obj.Name(), heldList(s), sum.blocks)
	}
}

// ldCalleeNode resolves a direct call to its module call-graph node.
func (p *pass) ldCalleeNode(pkg *Package, call *ast.CallExpr) *cgNode {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	return p.graph.byObj[obj]
}

// ldReportLeaks flags locks that may still be held at function exit
// with no deferred unlock to release them.
func (p *pass) ldReportLeaks(pkg *Package, g *funcCFG, in map[*cfgBlock]ldState) {
	exitState, reachedExit := in[g.exit]
	if !reachedExit || len(exitState) == 0 {
		return
	}
	deferred := map[string]bool{}
	for _, d := range g.defers {
		ast.Inspect(d, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if op, tok, ok := p.ldMutexOp(pkg, call); ok && op == opUnlock {
					deferred[tok] = true
				}
			}
			return true
		})
	}
	var toks []string
	for tok := range exitState {
		if !deferred[tok] {
			toks = append(toks, tok)
		}
	}
	sort.Strings(toks)
	for _, tok := range toks {
		p.report("lockdiscipline", exitState[tok],
			"%s may still be held at return on some path, and no deferred unlock releases it", tok)
	}
}

// ldReportInversions finds cycles in the module-wide acquisition
// order graph and reports each one once, deterministically.
func (p *pass) ldReportInversions(edges map[ldOrderEdge]token.Pos) {
	// Adjacency, sorted for determinism.
	adj := map[string][]string{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	// Tarjan over tokens; any SCC with ≥2 members (or a self-edge,
	// already reported as double-lock) is an inversion.
	sccs := tokenSCCs(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, t := range scc {
			inSCC[t] = true
		}
		// Anchor the finding at the smallest-position edge inside the
		// cycle and cite one witness per direction.
		var witness []string
		var anchor token.Pos
		for _, from := range scc {
			for _, to := range adj[from] {
				if !inSCC[to] {
					continue
				}
				pos := edges[ldOrderEdge{from: from, to: to}]
				if anchor == token.NoPos || pos < anchor {
					anchor = pos
				}
				witness = append(witness, fmt.Sprintf("%s→%s at %s", from, to, p.mod.Fset.Position(pos)))
			}
		}
		sort.Strings(witness)
		p.report("lockdiscipline", anchor,
			"lock-order inversion among {%s}: %s", strings.Join(scc, ", "), strings.Join(witness, "; "))
	}
}

// tokenSCCs is Tarjan's algorithm over the string-token order graph.
func tokenSCCs(adj map[string][]string) [][]string {
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				lowlink[v] = min(lowlink[v], lowlink[w])
			} else if onStack[w] {
				lowlink[v] = min(lowlink[v], index[w])
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return out
}

func heldList(s ldState) string {
	var toks []string
	for tok := range s {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	return strings.Join(toks, ", ")
}

func sortedKeysList(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
