package vetcheck

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness: fixture files carry `// want "regex"` comments;
// every finding must match a want on its own line (or, for findings
// the comment layout cannot reach, the line directly below the want),
// and every want must be consumed by exactly one finding.

type want struct {
	file     string
	line     int
	re       *regexp.Regexp
	raw      string
	consumed bool
}

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, mod *Module) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regex %q: %v", pos, pat, err)
						}
						out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	return out
}

func TestGoldenFixtures(t *testing.T) {
	mod, err := Load("testdata/src/fix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(mod, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, mod)
	if len(wants) == 0 {
		t.Fatal("no want comments found in fixtures")
	}

	for _, f := range findings {
		text := fmt.Sprintf("[%s] %s", f.Check, f.Msg)
		matched := false
		for _, w := range wants {
			if w.consumed || w.file != f.Pos.Filename {
				continue
			}
			if (w.line == f.Pos.Line || w.line == f.Pos.Line-1) && w.re.MatchString(text) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.consumed {
			t.Errorf("%s:%d: want %q matched no finding", w.file, w.line, w.raw)
		}
	}
}

// A partial -checks run must not misjudge pragmas belonging to the
// checks it skipped: the fixture's budgetpoints pragma is stale under
// a full run but invisible to a clockinject-only run.
func TestPartialRunSkipsForeignPragmas(t *testing.T) {
	mod, err := Load("testdata/src/fix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(mod, []string{"clockinject"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check != "clockinject" && f.Check != "pragma" {
			t.Errorf("disabled check fired: %s", f)
		}
		if strings.Contains(f.Msg, "stale") && strings.Contains(f.Msg, "budgetpoints") {
			t.Errorf("stale verdict on a pragma for a disabled check: %s", f)
		}
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	mod := &Module{}
	if _, err := RunModule(mod, []string{"nosuchcheck"}, DefaultConfig()); err == nil {
		t.Fatal("unknown check name must be a load-time error")
	}
}
