package vetcheck

import (
	"go/ast"
	"go/types"
)

// callGraph is the intra-module call graph at FuncDecl granularity.
// Function literals are inlined into the declaration that lexically
// contains them: a call made by a closure is an edge from the
// enclosing declaration, and calling a local variable that was
// assigned a literal in the same declaration is a self-edge — which is
// exactly how the engines spell recursive closures (e.g. the `mh`
// fixpoint walker in dtd.computeMinHeights).
type callGraph struct {
	nodes []*cgNode
	byObj map[types.Object]*cgNode
}

type cgNode struct {
	obj  types.Object
	decl *ast.FuncDecl
	pkg  *Package
	out  map[*cgNode]bool
	// budget is true when the body (closures included) calls a
	// (*guard.Budget) method directly.
	budget bool

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	scc            int
}

var budgetMethods = set("Tick", "Check", "AddNodes", "AddChains", "CheckK", "Point")

// buildCallGraph constructs the graph for the whole module.
func buildCallGraph(p *pass) *callGraph {
	g := &callGraph{byObj: map[types.Object]*cgNode{}}
	for obj, decl := range p.declOf {
		n := &cgNode{obj: obj, decl: decl, out: map[*cgNode]bool{}, index: -1}
		g.byObj[obj] = n
		g.nodes = append(g.nodes, n)
	}
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				n := g.byObj[obj]
				if n == nil {
					continue
				}
				n.pkg = pkg
				addCalls(g, n, pkg, fd)
			}
		}
	}
	return g
}

// addCalls records every call made inside decl (closures inlined).
func addCalls(g *callGraph, n *cgNode, pkg *Package, decl *ast.FuncDecl) {
	// Local variables assigned a function literal anywhere in this
	// declaration: calling one re-enters code of this declaration, so
	// it is modeled as a self-edge. This over-approximates (the var
	// could be reassigned a non-recursive literal) in exactly the
	// conservative direction budgetpoints needs.
	litVars := map[types.Object]bool{}
	ast.Inspect(decl, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, isLit := rhs.(*ast.FuncLit); !isLit || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					litVars[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					litVars[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[fun]
			if obj == nil {
				return true
			}
			if litVars[obj] {
				n.out[n] = true // recursive closure
				return true
			}
			if callee := g.byObj[obj]; callee != nil {
				n.out[callee] = true
			}
		case *ast.SelectorExpr:
			fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return true
			}
			if isBudgetMethod(fn) {
				n.budget = true
				return true
			}
			if callee := g.byObj[fn]; callee != nil {
				n.out[callee] = true
			}
		}
		return true
	})
}

// isBudgetMethod reports whether fn is one of the budget-consuming
// methods of guard.Budget.
func isBudgetMethod(fn *types.Func) bool {
	if !budgetMethods[fn.Name()] || !isGuardPkg(fn.Pkg()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Budget"
}

// sccs runs Tarjan's algorithm, assigning scc ids; nodes sharing an id
// are mutually recursive (ids are also assigned to singletons).
func (g *callGraph) sccs() {
	index, sccID := 0, 0
	var stack []*cgNode
	var strongconnect func(v *cgNode)
	strongconnect = func(v *cgNode) {
		v.index, v.lowlink = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for w := range v.out {
			if w.index < 0 {
				strongconnect(w)
				v.lowlink = min(v.lowlink, w.lowlink)
			} else if w.onStack {
				v.lowlink = min(v.lowlink, w.index)
			}
		}
		if v.lowlink == v.index {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.scc = sccID
				if w == v {
					break
				}
			}
			sccID++
		}
	}
	for _, v := range g.nodes {
		if v.index < 0 {
			strongconnect(v)
		}
	}
}

// recursive reports whether n participates in a cycle: a self-edge or
// a non-trivial SCC.
func (g *callGraph) recursive(n *cgNode) bool {
	if n.out[n] {
		return true
	}
	for _, m := range g.nodes {
		if m != n && m.scc == n.scc {
			return true
		}
	}
	return false
}

// reachesBudget reports whether any function reachable from n
// (n included) calls a budget method.
func (g *callGraph) reachesBudget(n *cgNode) bool {
	seen := map[*cgNode]bool{}
	var dfs func(v *cgNode) bool
	dfs = func(v *cgNode) bool {
		if v.budget {
			return true
		}
		seen[v] = true
		for w := range v.out {
			if !seen[w] && dfs(w) {
				return true
			}
		}
		return false
	}
	return dfs(n)
}
