package vetcheck

import (
	"go/ast"
	"go/types"
	"sort"
)

// callGraph is the intra-module call graph at FuncDecl granularity.
// Function literals are inlined into the declaration that lexically
// contains them: a call made by a closure is an edge from the
// enclosing declaration, and calling a local variable that was
// assigned a literal in the same declaration is a self-edge — which is
// exactly how the engines spell recursive closures (e.g. the `mh`
// fixpoint walker in dtd.computeMinHeights).
//
// Beyond direct calls, edges are added for:
//
//   - function and method values: referencing a module function
//     outside call position (passing it, storing it, binding a method
//     value) may invoke it later, so it is a may-call edge;
//   - interface dispatch: a call through a module-defined interface
//     gets an edge to the corresponding concrete method of every
//     module type implementing it.
//
// Both over-approximate in the conservative direction the
// interprocedural summaries need. Nodes are sorted by source position
// so every traversal of g.nodes is deterministic.
type callGraph struct {
	nodes   []*cgNode
	byObj   map[types.Object]*cgNode
	modPath string
	// namedTypes are the module's named non-interface types, the
	// candidate receivers for interface dispatch.
	namedTypes   []*types.Named
	dispatchMemo map[*types.Func][]*cgNode
}

type cgNode struct {
	obj  types.Object
	decl *ast.FuncDecl
	pkg  *Package
	out  map[*cgNode]bool
	// budget is true when the body (closures included) calls a
	// (*guard.Budget) method directly.
	budget bool

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	scc            int
}

var budgetMethods = set("Tick", "Check", "AddNodes", "AddChains", "CheckK", "Point")

// buildCallGraph constructs the graph for the whole module.
func buildCallGraph(p *pass) *callGraph {
	g := &callGraph{
		byObj:        map[types.Object]*cgNode{},
		modPath:      p.mod.Path,
		dispatchMemo: map[*types.Func][]*cgNode{},
	}
	for obj, decl := range p.declOf {
		n := &cgNode{obj: obj, decl: decl, out: map[*cgNode]bool{}, index: -1}
		g.byObj[obj] = n
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		a := p.mod.Fset.Position(g.nodes[i].decl.Pos())
		b := p.mod.Fset.Position(g.nodes[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, pkg := range p.mod.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				n := g.byObj[obj]
				if n == nil {
					continue
				}
				n.pkg = pkg
				addCalls(g, n, pkg, fd)
			}
		}
	}
	return g
}

// addCalls records every call made inside decl (closures inlined),
// plus may-call edges for function values and interface dispatch.
func addCalls(g *callGraph, n *cgNode, pkg *Package, decl *ast.FuncDecl) {
	// Local variables assigned a function literal anywhere in this
	// declaration: calling one re-enters code of this declaration, so
	// it is modeled as a self-edge. This over-approximates (the var
	// could be reassigned a non-recursive literal) in exactly the
	// conservative direction budgetpoints needs.
	litVars := map[types.Object]bool{}
	ast.Inspect(decl, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, isLit := rhs.(*ast.FuncLit); !isLit || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					litVars[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					litVars[obj] = true
				}
			}
		}
		return true
	})

	// Expressions in direct call position — their non-call uses are
	// the function/method values.
	callees := map[ast.Expr]bool{}
	ast.Inspect(decl, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callees[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(node.Fun).(type) {
			case *ast.Ident:
				obj := pkg.Info.Uses[fun]
				if obj == nil {
					return true
				}
				if litVars[obj] {
					n.out[n] = true // recursive closure
					return true
				}
				if callee := g.byObj[obj]; callee != nil {
					n.out[callee] = true
				}
			case *ast.SelectorExpr:
				fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
				if !ok {
					return true
				}
				if isBudgetMethod(fn) {
					n.budget = true
					return true
				}
				if callee := g.byObj[fn]; callee != nil {
					n.out[callee] = true
					return true
				}
				for _, impl := range g.dispatch(fn) {
					n.out[impl] = true
				}
			}
		case *ast.Ident:
			// Function value: a module function referenced outside
			// call position may be invoked later.
			if callees[node] {
				return true
			}
			if obj := pkg.Info.Uses[node]; obj != nil {
				if _, isFn := obj.(*types.Func); isFn {
					if ref := g.byObj[obj]; ref != nil {
						n.out[ref] = true
					}
				}
			}
		case *ast.SelectorExpr:
			// Method value: recv.Method without calling it.
			if callees[node] {
				return true
			}
			if fn, ok := pkg.Info.Uses[node.Sel].(*types.Func); ok {
				if isBudgetMethod(fn) {
					n.budget = true
					return true
				}
				if ref := g.byObj[fn]; ref != nil {
					n.out[ref] = true
				}
			}
		}
		return true
	})
}

// dispatch resolves a call of an interface method to the concrete
// methods of every module type implementing that interface. Only
// module-defined interfaces are resolved: dispatch through fmt or
// error interfaces would connect unrelated Stringers into spurious
// cycles, and no engine invariant flows through them.
func (g *callGraph) dispatch(fn *types.Func) []*cgNode {
	if out, ok := g.dispatchMemo[fn]; ok {
		return out
	}
	g.dispatchMemo[fn] = nil
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if pkg := fn.Pkg(); pkg == nil || !inModule(pkg.Path(), g.modPath) {
		return nil
	}
	var out []*cgNode
	for _, named := range g.namedTypes {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			if node := g.byObj[m]; node != nil {
				out = append(out, node)
			}
		}
	}
	g.dispatchMemo[fn] = out
	return out
}

// inModule reports whether path is the module path or inside it.
func inModule(path, modPath string) bool {
	return path == modPath ||
		(len(path) > len(modPath) && path[:len(modPath)] == modPath && path[len(modPath)] == '/')
}

// isBudgetMethod reports whether fn is one of the budget-consuming
// methods of guard.Budget.
func isBudgetMethod(fn *types.Func) bool {
	if !budgetMethods[fn.Name()] || !isGuardPkg(fn.Pkg()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Budget"
}

// sccs runs Tarjan's algorithm, assigning scc ids; nodes sharing an id
// are mutually recursive (ids are also assigned to singletons).
func (g *callGraph) sccs() {
	index, sccID := 0, 0
	var stack []*cgNode
	var strongconnect func(v *cgNode)
	strongconnect = func(v *cgNode) {
		v.index, v.lowlink = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range g.sortedOut(v) {
			if w.index < 0 {
				strongconnect(w)
				v.lowlink = min(v.lowlink, w.lowlink)
			} else if w.onStack {
				v.lowlink = min(v.lowlink, w.index)
			}
		}
		if v.lowlink == v.index {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.scc = sccID
				if w == v {
					break
				}
			}
			sccID++
		}
	}
	for _, v := range g.nodes {
		if v.index < 0 {
			strongconnect(v)
		}
	}
}

// sortedOut returns v's successors in deterministic (node-slice)
// order, so SCC ids are stable run to run.
func (g *callGraph) sortedOut(v *cgNode) []*cgNode {
	out := make([]*cgNode, 0, len(v.out))
	for w := range v.out {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].decl.Pos() < out[j].decl.Pos()
	})
	return out
}

// recursive reports whether n participates in a cycle: a self-edge or
// a non-trivial SCC.
func (g *callGraph) recursive(n *cgNode) bool {
	if n.out[n] {
		return true
	}
	for _, m := range g.nodes {
		if m != n && m.scc == n.scc {
			return true
		}
	}
	return false
}

// reachesBudget reports whether any function reachable from n
// (n included) calls a budget method.
func (g *callGraph) reachesBudget(n *cgNode) bool {
	seen := map[*cgNode]bool{}
	var dfs func(v *cgNode) bool
	dfs = func(v *cgNode) bool {
		if v.budget {
			return true
		}
		seen[v] = true
		for w := range v.out {
			if !seen[w] && dfs(w) {
				return true
			}
		}
		return false
	}
	return dfs(n)
}
