package vetcheck

import (
	"strings"
	"testing"
)

// TestMutationLaunderingCaught is the acceptance experiment for the
// verdictflow upgrade: a verdict laundered through a local variable
// inside a function the old gate allowlisted by name. The old
// configuration (reportFromResult in ProofFuncs) is provably silent;
// the flow-sensitive check fires.
func TestMutationLaunderingCaught(t *testing.T) {
	mod, err := Load("testdata/src/mut")
	if err != nil {
		t.Fatal(err)
	}

	findings, err := RunModule(mod, []string{"verdictflow"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "mut.go") &&
			strings.Contains(f.Msg, "cannot trace to proof-kernel evidence") {
			caught = true
		}
	}
	if !caught {
		t.Errorf("verdictflow missed the laundered verdict; findings: %v", findings)
	}

	// The old allowlist semantics, reconstructed: with the laundering
	// function allowlisted, the same defect is invisible.
	old := DefaultConfig()
	old.ProofFuncs = set("reportFromResult")
	oldFindings, err := RunModule(mod, []string{"verdictflow"}, old)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range oldFindings {
		if strings.HasSuffix(f.Pos.Filename, "mut.go") {
			t.Errorf("allowlisted run should be silent on mut.go, got %v", f)
		}
	}
}

// TestMutationLockInversionCaught covers the seeded inversion the CI
// negative smoke relies on.
func TestMutationLockInversionCaught(t *testing.T) {
	mod, err := Load("testdata/src/mut")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(mod, []string{"lockdiscipline"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Msg, "lock-order inversion") {
			return
		}
	}
	t.Errorf("lockdiscipline missed the seeded inversion; findings: %v", findings)
}
