package vetcheck

import (
	"go/ast"
	"strings"
)

// checkPanicDiscipline enforces the three panic rules that make the
// guard recovery boundary airtight (DESIGN.md §5):
//
//  1. In engine packages, panic(x) must carry *guard.InternalError —
//     the one payload every guard boundary converts to an error — or
//     sit inside a Must* constructor, the documented parse-or-die
//     idiom for fixtures and examples.
//  2. In go-recover packages (internal/server), the function started
//     by every go statement must install a deferred recover as its
//     first order of business; a goroutine without one can crash the
//     whole process no matter how disciplined the engines are.
//  3. The recover builtin is reserved to internal/guard (and package
//     main): scattered ad-hoc recovery would silence panics the chaos
//     harness is designed to observe and attribute.
func checkPanicDiscipline(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		engine := p.cfg.EnginePackages[pkg.Rel]
		goRec := p.cfg.GoRecoverPackages[pkg.Rel]
		guardPkg := isGuardPkg(pkg.Pkg)
		isMain := pkg.Name == "main"
		for _, f := range pkg.Files {
			walkWithDecl(f, func(n ast.Node, decl *ast.FuncDecl) {
				switch node := n.(type) {
				case *ast.CallExpr:
					if engine && isBuiltin(pkg.Info, node.Fun, "panic") {
						checkPanicCall(p, pkg, node, decl)
					}
					if !guardPkg && !isMain && isBuiltin(pkg.Info, node.Fun, "recover") {
						p.report("panicdiscipline", node.Pos(),
							"recover() outside internal/guard: use guard.Recover or guard.OnPanic so panics stay observable")
					}
				case *ast.GoStmt:
					if goRec {
						checkGoStmt(p, pkg, node)
					}
				}
			})
		}
	}
}

func checkPanicCall(p *pass, pkg *Package, call *ast.CallExpr, decl *ast.FuncDecl) {
	if decl != nil && (strings.HasPrefix(decl.Name.Name, "Must") ||
		strings.HasPrefix(decl.Name.Name, "must")) {
		return
	}
	if len(call.Args) == 1 {
		if tv, ok := pkg.Info.Types[call.Args[0]]; ok && isGuardInternalError(tv.Type) {
			return
		}
	}
	p.report("panicdiscipline", call.Pos(),
		"panic in engine package must carry *guard.InternalError (or be inside a Must* constructor)")
}

// checkGoStmt requires the goroutine's entry function to begin with a
// deferred recover.
func checkGoStmt(p *pass, pkg *Package, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd := p.declOf[pkg.Info.Uses[fun]]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := p.declOf[pkg.Info.Uses[fun.Sel]]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		p.report("panicdiscipline", g.Pos(),
			"go statement starts a function xqvet cannot inspect; use a func literal with a deferred guard recover")
		return
	}
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if isRecoverer(p, pkg, def.Call) {
			return
		}
	}
	p.report("panicdiscipline", g.Pos(),
		"goroutine has no deferred recover: defer guard.Recover/guard.OnPanic (or recover()) at the top of its body")
}

// isRecoverer reports whether the deferred call establishes a recover
// boundary: guard.Recover / guard.OnPanic, a function literal that
// calls the recover builtin, or a module function that does.
func isRecoverer(p *pass, pkg *Package, call *ast.CallExpr) bool {
	if guardCall(pkg.Info, call, "Recover", "OnPanic") {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return callsRecover(pkg, fun)
	case *ast.Ident:
		if fd := p.declOf[pkg.Info.Uses[fun]]; fd != nil {
			return callsRecover(pkg, fd)
		}
	}
	return false
}

func callsRecover(pkg *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pkg.Info, call.Fun, "recover") {
			found = true
		}
		return !found
	})
	return found
}
