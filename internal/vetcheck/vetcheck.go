// Package vetcheck is the project's static-analysis gate: it loads
// every package of the module with go/parser + go/types (stdlib only,
// no x/tools) and machine-checks the hand-maintained invariants that
// keep the engine's independence verdicts sound and its serving layer
// deterministic. See DESIGN.md §5 for the invariant each check guards.
//
// The nine checks:
//
//	panicdiscipline — panics in engine packages carry
//	    *guard.InternalError (or sit in Must* constructors), every go
//	    statement in internal/server installs a deferred recover, and
//	    the recover builtin itself is reserved to internal/guard.
//	budgetpoints — every (mutually) recursive function in the
//	    chain/CDAG/inference packages consults the guard.Budget.
//	verdictflow — a flow-sensitive proof obligation: every value that
//	    reaches an Independent field of a verdict type must be
//	    dominated, on all CFG paths, by evidence from the proof kernel
//	    (see DESIGN.md §12). Replaces the old name-based verdictsites
//	    allowlist.
//	lockdiscipline — held-locks dataflow over the service packages:
//	    no double acquisition, no blocking operation under a lock, a
//	    cycle-free module-wide acquisition order, no lock leaked past
//	    return.
//	frozenartifact — compiled schemas, interned chains, and the bitset
//	    rows they expose are immutable once constructed; mutations are
//	    confined to their home packages.
//	ctxflow — context.Context is the first parameter;
//	    context.Background()/TODO() only at annotated detach points.
//	clockinject — internal/server and internal/faultinject never read
//	    ambient time or global randomness.
//	compilecache — dtd.NewCompiled is only called inside internal/dtd;
//	    everyone else obtains compiled schemas through the cache.
//	fsdiscipline — the durable-state packages touch the filesystem
//	    only through the injectable FS seam; ambient os file functions
//	    are confined to the allowlisted adapter files.
//
// A finding is suppressed by a pragma on the same or preceding line:
//
//	//xqvet:ignore <check> <reason>
//
// The reason is mandatory; a reasonless, unknown-check or stale pragma
// is itself a finding (check name "pragma"), so the annotation debt
// stays visible.
package vetcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// Config scopes the checks. All package sets are keyed by
// module-relative import path ("" is the module root), and function /
// type allowlists by "relpath.Name" ("Name" alone for the root
// package), so one configuration serves both the real module and
// testdata fixtures.
type Config struct {
	// EnginePackages: panic(x) requires x to be *guard.InternalError
	// unless the enclosing top-level function is a Must* constructor.
	EnginePackages map[string]bool
	// GoRecoverPackages: every go statement must start a function whose
	// body installs a deferred recover (guard.Recover, guard.OnPanic,
	// or a direct recover()).
	GoRecoverPackages map[string]bool
	// BudgetPackages: self- or mutually-recursive functions must call a
	// (*guard.Budget) method, directly or via a callee.
	BudgetPackages map[string]bool
	// VerdictTypes are the structs whose Independent field carries the
	// paper's soundness guarantee.
	VerdictTypes map[string]bool
	// ProofFuncs are the proof kernel: the only functions allowed to
	// originate Independent=true out of thin air. Everywhere else,
	// verdictflow demands the value be traceable to kernel evidence.
	ProofFuncs map[string]bool
	// LockPackages: lockdiscipline runs its held-locks dataflow here.
	LockPackages map[string]bool
	// FrozenTypes are the artifact types immutable after construction.
	FrozenTypes map[string]bool
	// FrozenHomePackages may mutate frozen artifacts (constructors and
	// the bitset rows they build live here).
	FrozenHomePackages map[string]bool
	// ClockPackages: ambient time and global math/rand are banned.
	ClockPackages map[string]bool
	// FSPackages: ambient os file functions are banned outside
	// FSAllowFiles — every filesystem touch goes through the injectable
	// FS seam so crash chaos can fault it deterministically.
	FSPackages map[string]bool
	// FSAllowFiles are the file basenames (the os adapters) where
	// ambient os file functions remain legal.
	FSAllowFiles map[string]bool
}

// DefaultConfig is the gate configuration for this repository (and,
// by module-relative construction, for the golden-test fixtures).
func DefaultConfig() Config {
	return Config{
		EnginePackages: set(
			"internal/bitset", "internal/cdag", "internal/chain",
			"internal/core", "internal/dtd", "internal/eval",
			"internal/faultinject", "internal/infer", "internal/pathanalysis",
			"internal/plan", "internal/preserve", "internal/quarantine",
			"internal/refcdag",
			"internal/sentinel", "internal/server", "internal/statefile",
			"internal/typeanalysis", "internal/xmark",
			"internal/xmltree", "internal/xquery",
		),
		GoRecoverPackages: set("internal/server", "internal/sentinel"),
		BudgetPackages: set(
			"internal/chain", "internal/cdag", "internal/infer",
			"internal/typeanalysis", "internal/pathanalysis",
			"internal/refcdag",
		),
		VerdictTypes: set(
			"internal/cdag.Verdict", "internal/refcdag.Verdict",
			"internal/infer.Verdict",
			"internal/typeanalysis.Verdict", "internal/pathanalysis.Verdict",
			"internal/core.Result", "internal/server.AnalyzeResponse",
			"Report",
		),
		// The proof kernel proper. The plumbing that used to need
		// allowlisting (core.analyzeOnce, server.Analyze,
		// reportFromResult) is now verified by the verdictflow
		// dataflow instead: every Independent they forward is read
		// from an already-checked verdict value.
		ProofFuncs: set(
			"internal/cdag.CheckIndependence",
			"internal/refcdag.CheckIndependence",
			"internal/infer.CheckIndependence",
			"internal/typeanalysis.CheckIndependence",
			"internal/pathanalysis.IndependenceBudget",
		),
		LockPackages: set(
			"internal/server", "internal/quarantine",
			"internal/sentinel", "internal/statefile", "internal/dtd",
			"internal/plan",
		),
		FrozenTypes: set(
			"internal/dtd.Compiled", "internal/chain.Interned",
			"internal/plan.CompiledExpr",
		),
		FrozenHomePackages: set(
			"internal/dtd", "internal/chain", "internal/bitset",
			"internal/plan",
		),
		ClockPackages: set(
			"internal/server", "internal/faultinject",
			"internal/quarantine", "internal/sentinel",
			"internal/statefile", "internal/obs",
		),
		FSPackages:   set("internal/statefile"),
		FSAllowFiles: set("osfs.go"),
	}
}

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// CheckNames lists the checks in canonical order.
var CheckNames = []string{
	"panicdiscipline", "budgetpoints", "verdictflow", "lockdiscipline",
	"frozenartifact", "ctxflow", "clockinject", "compilecache",
	"fsdiscipline",
}

type checkFunc func(*pass)

var checkFuncs = map[string]checkFunc{
	"panicdiscipline": checkPanicDiscipline,
	"budgetpoints":    checkBudgetPoints,
	"verdictflow":     checkVerdictFlow,
	"lockdiscipline":  checkLockDiscipline,
	"frozenartifact":  checkFrozenArtifact,
	"ctxflow":         checkCtxFlow,
	"clockinject":     checkClockInject,
	"compilecache":    checkCompileCache,
	"fsdiscipline":    checkFSDiscipline,
}

// pass carries shared state across checks for one module.
type pass struct {
	mod      *Module
	cfg      Config
	findings []Finding
	// declOf maps a function object to its declaration, module-wide.
	declOf map[types.Object]*ast.FuncDecl
	// graph is the intra-module call graph (see callgraph.go), built
	// lazily via ensureGraph.
	graph *callGraph
	// vfSummaries memoizes verdictflow's per-function evidence
	// summaries: for each result position, whether every return ships
	// proof-kernel evidence there.
	vfSummaries map[*types.Func][]bool
	// ldSummaries memoizes lockdiscipline's may-acquire / may-block
	// facts per module function.
	ldSummaries map[types.Object]*ldSummary
}

func (p *pass) report(check string, pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:   p.mod.Fset.Position(pos),
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Run loads the module at dir and applies the named checks (all six
// when checks is empty), returning pragma-filtered findings sorted by
// position. Pragma defects (missing reason, unknown check, stale
// ignore) are appended as check "pragma" and cannot themselves be
// suppressed.
func Run(dir string, checks []string, cfg Config) ([]Finding, error) {
	mod, err := Load(dir)
	if err != nil {
		return nil, err
	}
	return RunModule(mod, checks, cfg)
}

// RunModule applies the checks to an already-loaded module.
func RunModule(mod *Module, checks []string, cfg Config) ([]Finding, error) {
	if len(checks) == 0 {
		checks = CheckNames
	}
	enabled := map[string]bool{}
	for _, c := range checks {
		if _, ok := checkFuncs[c]; !ok {
			return nil, fmt.Errorf("vetcheck: unknown check %q (have %s)",
				c, strings.Join(CheckNames, ", "))
		}
		enabled[c] = true
	}

	p := newPass(mod, cfg)
	for _, name := range CheckNames { // canonical order, stable output
		if enabled[name] {
			checkFuncs[name](p)
		}
	}

	pragmas := collectPragmas(mod)
	findings := applyPragmas(p.findings, pragmas, enabled, mod)
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by (file, line, column, check, message)
// — a total order, so runs over the same tree print identically and CI
// diffs stay stable regardless of package-load or map-iteration order.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// newPass indexes the module's declarations for a fresh run.
func newPass(mod *Module, cfg Config) *pass {
	p := &pass{
		mod:         mod,
		cfg:         cfg,
		declOf:      map[types.Object]*ast.FuncDecl{},
		vfSummaries: map[*types.Func][]bool{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						p.declOf[obj] = fd
					}
				}
			}
		}
	}
	return p
}

// pragma is one parsed //xqvet:ignore comment.
type pragma struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

const pragmaPrefix = "//xqvet:ignore"

func collectPragmas(mod *Module) []*pragma {
	var out []*pragma
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, pragmaPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					pr := &pragma{pos: mod.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						pr.check = fields[0]
					}
					if len(fields) > 1 {
						pr.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// applyPragmas suppresses findings covered by a well-formed pragma on
// the same or the immediately preceding line, then reports pragma
// defects. A pragma with no reason or an unknown check suppresses
// nothing — the annotation itself is broken and both findings surface.
// Staleness is only judged for pragmas naming an enabled check, so a
// partial -checks run never misreports ignores for the checks it
// skipped.
func applyPragmas(found []Finding, pragmas []*pragma, enabled map[string]bool, mod *Module) []Finding {
	type key struct {
		file  string
		line  int
		check string
	}
	wellFormed := map[key]*pragma{}
	for _, pr := range pragmas {
		if pr.reason == "" || !validCheck(pr.check) {
			continue
		}
		wellFormed[key{pr.pos.Filename, pr.pos.Line, pr.check}] = pr
	}

	var out []Finding
	for _, f := range found {
		suppressed := false
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			if pr := wellFormed[key{f.Pos.Filename, line, f.Check}]; pr != nil {
				pr.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}

	for _, pr := range pragmas {
		switch {
		case !validCheck(pr.check):
			out = append(out, Finding{Pos: pr.pos, Check: "pragma",
				Msg: fmt.Sprintf("xqvet:ignore names unknown check %q", pr.check)})
		case pr.reason == "":
			out = append(out, Finding{Pos: pr.pos, Check: "pragma",
				Msg: fmt.Sprintf("xqvet:ignore %s needs a non-empty reason", pr.check)})
		case !pr.used && enabled[pr.check]:
			out = append(out, Finding{Pos: pr.pos, Check: "pragma",
				Msg: fmt.Sprintf("stale xqvet:ignore: no %s finding on this or the next line", pr.check)})
		}
	}
	return out
}

func validCheck(name string) bool {
	_, ok := checkFuncs[name]
	return ok
}

// ---- shared helpers ----

// relName is the config key for a top-level name in pkg: "rel.Name",
// or bare "Name" in the module root.
func relName(pkg *Package, name string) string {
	if pkg.Rel == "" {
		return name
	}
	return pkg.Rel + "." + name
}

// relKey builds the same config key from a module-relative path.
func relKey(rel, name string) string {
	if rel == "" {
		return name
	}
	return rel + "." + name
}

// relOfTypesPkg maps a types.Package back to its module-relative path.
// It matches by import-path suffix, not pointer identity, because the
// same package is represented by distinct *types.Package values when
// reached through export data of different importers.
func (p *pass) relOfTypesPkg(tp *types.Package) (string, bool) {
	if tp == nil {
		return "", false
	}
	path := tp.Path()
	if path == p.mod.Path {
		return "", true
	}
	if rel, ok := strings.CutPrefix(path, p.mod.Path+"/"); ok {
		return rel, true
	}
	return "", false
}

// pkgOfObj finds the loaded *Package defining obj, nil for objects
// outside the module.
func (p *pass) pkgOfObj(obj types.Object) *Package {
	rel, ok := p.relOfTypesPkg(obj.Pkg())
	if !ok {
		return nil
	}
	for _, pkg := range p.mod.Pkgs {
		if pkg.Rel == rel {
			return pkg
		}
	}
	return nil
}

// ensureGraph builds the module call graph (with SCC ids assigned) on
// first use so any check can rely on it without caring which ran first.
func (p *pass) ensureGraph() {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
		p.graph.sccs()
	}
}

// isGuardInternalError reports whether t is *P.InternalError for some
// package P named "guard" under the module's internal tree. Matching
// by name keeps fixtures (module example.com/fix with its own stub
// internal/guard) under the exact same rule as the real module.
func isGuardInternalError(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "InternalError" && isGuardPkg(obj.Pkg())
}

func isGuardPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/guard" ||
		strings.HasSuffix(pkg.Path(), "/internal/guard"))
}

// isBuiltin reports whether the called expression resolves to the
// named builtin (panic, recover, ...).
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// guardCall reports whether call invokes a package-level function of
// the guard package with one of the given names.
func guardCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !isGuardPkg(fn.Pkg()) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// walkWithDecl walks file, invoking fn with each node and its
// enclosing top-level FuncDecl (nil outside any function). Function
// literals are attributed to the declaration that lexically contains
// them: a closure inside a proof function is part of the proof.
func walkWithDecl(file *ast.File, fn func(n ast.Node, decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			ast.Inspect(d, func(n ast.Node) bool {
				if n != nil {
					fn(n, nil)
				}
				return true
			})
			continue
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			if n != nil {
				fn(n, fd)
			}
			return true
		})
	}
}

// walkWithStack walks file keeping the ancestor stack, calling fn on
// every node push with the stack of its ancestors (outermost first,
// not including n itself).
func walkWithStack(file *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
