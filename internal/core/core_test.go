package core

import (
	"strings"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/xquery"
)

var bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- #PCDATA
price <- #PCDATA
`)

func TestMethods(t *testing.T) {
	for _, c := range []struct {
		name string
		m    Method
	}{
		{"chains", MethodChains},
		{"chains-exact", MethodChainsExact},
		{"types", MethodTypes},
		{"paths", MethodPaths},
	} {
		if c.m.String() != c.name {
			t.Errorf("String(%v) = %q", c.m, c.m.String())
		}
		m, err := ParseMethod(c.name)
		if err != nil || m != c.m {
			t.Errorf("ParseMethod(%q) = %v, %v", c.name, m, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Errorf("ParseMethod(bogus) should fail")
	}
	if !strings.Contains(Method(99).String(), "99") {
		t.Errorf("unknown method string")
	}
}

func TestAnalyzeAllMethods(t *testing.T) {
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("for $x in //book return insert <author>x</author> into $x")
	want := map[Method]bool{
		MethodChains:      true,
		MethodChainsExact: true,
		MethodTypes:       false,
		MethodPaths:       false,
	}
	for m, indep := range want {
		r, err := a.Analyze(q, u, m)
		if err != nil {
			t.Fatalf("Analyze(%v): %v", m, err)
		}
		if r.Independent != indep {
			t.Errorf("%v: independent = %v, want %v (witnesses %v)", m, r.Independent, indep, r.Witnesses)
		}
		if !r.Independent && len(r.Witnesses) == 0 {
			t.Errorf("%v: dependent verdict without witnesses", m)
		}
		if r.Method != m {
			t.Errorf("method echoed wrong")
		}
		if r.Elapsed <= 0 {
			t.Errorf("%v: no elapsed time", m)
		}
	}
	ok, err := a.Independent(q, u)
	if err != nil || !ok {
		t.Errorf("Independent = %v, %v", ok, err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("$free/title")
	u := xquery.MustParseUpdate("delete //price")
	if _, err := a.Analyze(q, u, MethodChains); err == nil {
		t.Errorf("free query variable accepted")
	}
	q2 := xquery.MustParseQuery("//title")
	u2 := xquery.MustParseUpdate("delete $other/price")
	if _, err := a.Analyze(q2, u2, MethodChains); err == nil {
		t.Errorf("free update variable accepted")
	}
	if _, err := a.Analyze(nil, u, MethodChains); err == nil {
		t.Errorf("nil query accepted")
	}
	if _, err := a.Analyze(q2, xquery.MustParseUpdate("()"), Method(42)); err == nil {
		t.Errorf("unknown method accepted")
	}
}

func TestChainsEvidence(t *testing.T) {
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")
	ret, used, elem, upd, k, err := a.Chains(q, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 1 || ret[0] != "bib.book.title" {
		t.Errorf("ret = %v", ret)
	}
	if len(upd) != 1 || upd[0] != "bib.book:price" {
		t.Errorf("upd = %v", upd)
	}
	if len(elem) != 0 {
		t.Errorf("elem = %v", elem)
	}
	_ = used
	if k < 2 {
		t.Errorf("k = %d", k)
	}
	if _, _, _, _, _, err := a.Chains(xquery.MustParseQuery("$z/a"), u); err == nil {
		t.Errorf("Chains accepted non-quasi-closed query")
	}
}
