package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// stress is an adversarial schema for the budget machinery: three
// mutually recursive element types under iterated alternation, so the
// k-chain universe explodes combinatorially with k while the schema
// itself stays tiny.
var stress = dtd.MustParse(`
r <- (x | y | z)*
x <- (x | y | z)*
y <- (x | y | z)*
z <- #PCDATA
`)

// heavy is a query/update pair whose multiplicity k is large enough
// that the exact chain engine cannot finish on stress within any
// reasonable budget.
var (
	heavyQ = xquery.MustParseQuery("//x//y//x//y//z")
	heavyU = xquery.MustParseUpdate("delete //y//x//y//x//z")
)

// unlimited disables every bound so that only the context governs.
var unlimited = guard.Limits{
	MaxK: guard.NoLimit, MaxChains: guard.NoLimit, MaxNodes: guard.NoLimit,
	MaxParseDepth: guard.NoLimit, MaxParseInput: guard.NoLimit,
}

// TestLadderDegradesOnChainBudget forces the exact engine over its
// chain-set budget and checks the fallback bookkeeping.
func TestLadderDegradesOnChainBudget(t *testing.T) {
	a := NewAnalyzer(stress)
	q := xquery.MustParseQuery("//y//z")
	u := xquery.MustParseUpdate("delete //x//z")
	res, err := a.AnalyzeContext(context.Background(), q, u, MethodChainsExact,
		Options{Limits: guard.Limits{MaxChains: 64}})
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("expected degradation with MaxChains=64, got method %s without it", res.Method)
	}
	if res.Method == MethodChainsExact {
		t.Errorf("degraded result still reports the overrun method %s", res.Method)
	}
	if len(res.FallbackChain) < 2 || res.FallbackChain[0] != MethodChainsExact {
		t.Errorf("FallbackChain = %v, want chains-exact first and at least one fallback", res.FallbackChain)
	}
	if res.FallbackChain[len(res.FallbackChain)-1] != res.Method {
		t.Errorf("FallbackChain = %v does not end with the answering method %s", res.FallbackChain, res.Method)
	}
	if !errors.Is(res.Err, guard.ErrBudgetExceeded) {
		t.Errorf("Result.Err = %v, want wrapped guard.ErrBudgetExceeded", res.Err)
	}
}

// TestLadderDegradesThroughCDAG squeezes both the chain-set and the
// CDAG node budgets so the ladder has to walk past two rungs.
func TestLadderDegradesThroughCDAG(t *testing.T) {
	a := NewAnalyzer(stress)
	q := xquery.MustParseQuery("//y//z")
	u := xquery.MustParseUpdate("delete //x//z")
	// A private empty plan cache forces the CDAG rung cold: a warm
	// plan from another test would answer without re-running inference
	// and never trip MaxNodes.
	res, err := a.AnalyzeContext(context.Background(), q, u, MethodChainsExact,
		Options{Limits: guard.Limits{MaxChains: 16, MaxNodes: 16}, Plans: plan.NewCache(8)})
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected degradation with MaxChains=16, MaxNodes=16")
	}
	if res.Method == MethodChainsExact || res.Method == MethodChains {
		t.Errorf("method %s should have exceeded its budget", res.Method)
	}
	want := []Method{MethodChainsExact, MethodChains}
	for i, m := range want {
		if i >= len(res.FallbackChain) || res.FallbackChain[i] != m {
			t.Fatalf("FallbackChain = %v, want prefix %v", res.FallbackChain, want)
		}
	}
}

// TestLadderDegradesOnMaxK checks that a pair whose multiplicity
// exceeds MaxK is not clamped (which would be unsound) but degraded to
// the k-free baselines.
func TestLadderDegradesOnMaxK(t *testing.T) {
	a := NewAnalyzer(stress)
	res, err := a.AnalyzeContext(context.Background(), heavyQ, heavyU, MethodChains,
		Options{Limits: guard.Limits{MaxK: 2}})
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected degradation: KPair of the heavy pair exceeds MaxK=2")
	}
	if res.Method == MethodChains || res.Method == MethodChainsExact {
		t.Errorf("chain method %s ran despite k over MaxK", res.Method)
	}
}

// TestNoFallbackReturnsBudgetError checks that Options.NoFallback
// turns a budget overrun into an error instead of a weaker verdict.
func TestNoFallbackReturnsBudgetError(t *testing.T) {
	a := NewAnalyzer(stress)
	q := xquery.MustParseQuery("//y//z")
	u := xquery.MustParseUpdate("delete //x//z")
	res, err := a.AnalyzeContext(context.Background(), q, u, MethodChainsExact,
		Options{Limits: guard.Limits{MaxChains: 64}, NoFallback: true})
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want wrapped guard.ErrBudgetExceeded", err)
	}
	assertNoVerdict(t, res)
}

// assertNoVerdict checks that a Result returned alongside an error is
// the zero value — no partial verdict leaked out.
func assertNoVerdict(t *testing.T, res Result) {
	t.Helper()
	if res.Independent || res.Degraded || res.Witnesses != nil || res.FallbackChain != nil || res.Err != nil || res.Elapsed != 0 {
		t.Errorf("partial result %+v returned alongside the error", res)
	}
}

// TestDegradedVerdictsAgreeWithOracle is the ladder soundness test:
// any "independent" verdict produced under a starvation budget — i.e.
// by whatever weaker rung answered — must agree with the dynamic
// oracle on a sample of valid documents. This is the property that
// makes degradation sound: no rung may flip a truly dependent pair to
// "independent".
func TestDegradedVerdictsAgreeWithOracle(t *testing.T) {
	queries := []string{"//z", "//y", "/r/x", "//x//y", "//y//z"}
	updates := []string{
		"delete //x", "delete //z", "delete //x//z",
		"for $v in //y return insert <z/> into $v",
		"()",
	}
	rng := rand.New(rand.NewSource(3))
	var trees []xmltree.Tree
	for i := 0; i < 10; i++ {
		tr, err := stress.GenerateTree(rng, 0.55, 6)
		if err != nil {
			t.Fatalf("GenerateTree: %v", err)
		}
		trees = append(trees, tr)
	}

	a := NewAnalyzer(stress)
	tiny := Options{Limits: guard.Limits{MaxChains: 32, MaxNodes: 128}}
	degradedRuns := 0
	for _, qs := range queries {
		q := xquery.MustParseQuery(qs)
		for _, us := range updates {
			u := xquery.MustParseUpdate(us)
			res, err := a.AnalyzeContext(context.Background(), q, u, MethodChainsExact, tiny)
			if err != nil {
				t.Fatalf("%s vs %s: %v", qs, us, err)
			}
			if res.Degraded {
				degradedRuns++
			}
			if !res.Independent {
				continue // "could not prove" is always safe
			}
			if i := eval.DependentOnAny(trees, q, u); i >= 0 {
				t.Errorf("UNSOUND: %s verdict (degraded=%v) says independent but document %d witnesses dependence\n  q = %s\n  u = %s",
					res.Method, res.Degraded, i, qs, us)
			}
		}
	}
	if degradedRuns == 0 {
		t.Fatal("starvation budget never engaged the ladder; the test exercised nothing")
	}
}

// TestDeadlineBoundsAnalysis checks the headline robustness property:
// on an adversarial pair the exact engine would chew on for hours,
// AnalyzeContext with a context deadline returns a degraded (still
// sound) verdict within about twice the deadline, and leaks no
// goroutines doing it.
func TestDeadlineBoundsAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	a := NewAnalyzer(stress)
	before := runtime.NumGoroutine()
	const deadline = 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	start := time.Now()
	res, err := a.AnalyzeContext(ctx, heavyQ, heavyU, MethodChainsExact, Options{Limits: unlimited})
	elapsed := time.Since(start)

	if err != nil {
		t.Fatalf("AnalyzeContext: %v (a deadline should degrade, not fail)", err)
	}
	if elapsed < deadline {
		t.Fatalf("finished in %v < %v deadline: the workload is not adversarial enough to test the deadline", elapsed, deadline)
	}
	if elapsed > 2*deadline {
		t.Errorf("took %v, want within 2x the %v deadline", elapsed, deadline)
	}
	if !res.Degraded {
		t.Error("deadline overrun did not mark the result degraded")
	}
	var le *guard.LimitError
	if !errors.As(res.Err, &le) || le.Resource != "deadline" {
		t.Errorf("Result.Err = %v, want a deadline LimitError", res.Err)
	}

	// No watchdogs, no helpers: the budget is checked cooperatively,
	// so the goroutine count must return to its pre-call level.
	deadlineAt := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadlineAt) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestCancelledContextReturnsNoVerdict checks that explicit
// cancellation propagates as context.Canceled — not as a budget error,
// and not as a degraded partial verdict.
func TestCancelledContextReturnsNoVerdict(t *testing.T) {
	a := NewAnalyzer(stress)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := a.AnalyzeContext(ctx, heavyQ, heavyU, MethodChainsExact, Options{Limits: unlimited})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, guard.ErrBudgetExceeded) {
		t.Error("cancellation was misclassified as a budget overrun")
	}
	assertNoVerdict(t, res)
}

// bogusQuery is a foreign AST node: it satisfies xquery.Query via an
// embedded nil interface, so every type switch over query nodes hits
// its panicking default case.
type bogusQuery struct{ xquery.Query }

func (bogusQuery) String() string { return "bogus" }

// TestInjectedPanicBecomesInternalError checks the panic boundary: an
// internal bug (here simulated by a foreign AST node) must surface as
// a typed *guard.InternalError with a stack, never as a raw panic.
func TestInjectedPanicBecomesInternalError(t *testing.T) {
	a := NewAnalyzer(stress)
	u := xquery.MustParseUpdate("delete //x")
	res, err := a.AnalyzeContext(context.Background(), bogusQuery{}, u, MethodChains, Options{})
	if err == nil {
		t.Fatal("expected an error from the injected panic")
	}
	var ie *guard.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *guard.InternalError", err, err)
	}
	if len(ie.Stack) == 0 {
		t.Error("InternalError carries no stack trace")
	}
	assertNoVerdict(t, res)
}

// TestConservativeBottomRung checks the bottom of the ladder: with an
// already-expired deadline and an adversarial pair, the ladder must
// still answer — degraded, and never claiming independence.
func TestConservativeBottomRung(t *testing.T) {
	a := NewAnalyzer(stress)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := a.AnalyzeContext(ctx, heavyQ, heavyU, MethodChainsExact, Options{Limits: unlimited})
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if res.Independent {
		t.Error("conservative rung claimed independence")
	}
	if !res.Degraded {
		t.Error("expired deadline did not mark the result degraded")
	}
}
