// Package core orchestrates the paper's primary contribution: given a
// schema and a query-update pair, it derives the multiplicity k = kq +
// ku (Table 3), runs chain inference over the finite k-chain universe
// (Sections 3–5) using either the polynomial CDAG engine (Section 6.1)
// or the explicit-set reference engine, and decides independence
// (Definition 4.1). The two baseline analyses of the evaluation
// section — flat type sets [6] and schema-less path overlap [15]/[5] —
// are exposed through the same interface for comparison.
package core

import (
	"fmt"
	"time"

	"xqindep/internal/cdag"
	"xqindep/internal/dtd"
	"xqindep/internal/infer"
	"xqindep/internal/pathanalysis"
	"xqindep/internal/typeanalysis"
	"xqindep/internal/xquery"
)

// Method selects an analysis technique.
type Method int

const (
	// MethodChains is the paper's contribution run on the CDAG engine
	// (polynomial; the default).
	MethodChains Method = iota
	// MethodChainsExact is the same calculus over explicit chain sets
	// (exact w.r.t. Tables 1–2, exponential in the worst case).
	MethodChainsExact
	// MethodTypes is the Benedikt-Cheney type-set baseline [6].
	MethodTypes
	// MethodPaths is the schema-less path-overlap baseline [15]/[5].
	MethodPaths
)

var methodNames = map[Method]string{
	MethodChains:      "chains",
	MethodChainsExact: "chains-exact",
	MethodTypes:       "types",
	MethodPaths:       "paths",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod resolves a method name.
func ParseMethod(s string) (Method, error) {
	for m, name := range methodNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q (want chains, chains-exact, types or paths)", s)
}

// Result reports one independence decision.
type Result struct {
	Independent bool
	Method      Method
	// K is the multiplicity kq+ku of the finite analysis (chain
	// methods only).
	K int
	// Witnesses lists human-readable conflict evidence when dependent.
	Witnesses []string
	// Elapsed is the analysis wall-clock time.
	Elapsed time.Duration
}

// Analyzer decides query-update independence for documents valid
// w.r.t. one schema.
type Analyzer struct {
	D *dtd.DTD
}

// NewAnalyzer builds an analyzer for the schema.
func NewAnalyzer(d *dtd.DTD) *Analyzer { return &Analyzer{D: d} }

// check verifies the pair is quasi-closed (only the root variable
// free), the form the whole calculus is stated for.
func check(q xquery.Query, u xquery.Update) error {
	if q == nil || u == nil {
		return fmt.Errorf("core: nil expression")
	}
	if !xquery.QuasiClosedQuery(q) {
		return fmt.Errorf("core: query has free variables besides %s", xquery.RootVar)
	}
	if !xquery.QuasiClosedUpdate(u) {
		return fmt.Errorf("core: update has free variables besides %s", xquery.RootVar)
	}
	return nil
}

// Analyze decides independence of the pair with the given method.
func (a *Analyzer) Analyze(q xquery.Query, u xquery.Update, m Method) (Result, error) {
	if err := check(q, u); err != nil {
		return Result{}, err
	}
	start := time.Now()
	res := Result{Method: m}
	switch m {
	case MethodChains:
		v := cdag.Independence(a.D, q, u)
		res.Independent = v.Independent
		res.K = v.K
		res.Witnesses = v.Reasons
	case MethodChainsExact:
		v := infer.Independence(a.D, q, u)
		res.Independent = v.Independent
		res.K = v.K
		for _, c := range v.Conflicts {
			res.Witnesses = append(res.Witnesses, c.String())
		}
	case MethodTypes:
		v := typeanalysis.Independence(a.D, q, u)
		res.Independent = v.Independent
		if !v.Independent {
			res.Witnesses = append(res.Witnesses, fmt.Sprintf("type overlap %v", v.Overlap))
		}
	case MethodPaths:
		v := pathanalysis.Independence(q, u)
		res.Independent = v.Independent
		if !v.Independent {
			res.Witnesses = append(res.Witnesses, fmt.Sprintf("path overlap %s vs %s", v.Witness[0], v.Witness[1]))
		}
	default:
		return Result{}, fmt.Errorf("core: unknown method %v", m)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Independent is the one-call form of the default (CDAG chain)
// analysis.
func (a *Analyzer) Independent(q xquery.Query, u xquery.Update) (bool, error) {
	r, err := a.Analyze(q, u, MethodChains)
	return r.Independent, err
}

// Chains exposes the inferred chain evidence of the exact engine for
// diagnostics: return/used/element chains of the query and the update
// chains, all in dotted notation.
func (a *Analyzer) Chains(q xquery.Query, u xquery.Update) (ret, used, elem, upd []string, k int, err error) {
	if err := check(q, u); err != nil {
		return nil, nil, nil, nil, 0, err
	}
	k = infer.KPair(q, u)
	in := infer.New(a.D, k)
	qc := in.Query(in.RootEnv(), q)
	uc := in.Update(in.RootEnv(), u)
	return qc.Ret.Strings(), qc.Used.Strings(), qc.Elem.Strings(), uc.Strings(), k, nil
}
