// Package core orchestrates the paper's primary contribution: given a
// schema and a query-update pair, it derives the multiplicity k = kq +
// ku (Table 3), runs chain inference over the finite k-chain universe
// (Sections 3–5) using either the polynomial CDAG engine (Section 6.1)
// or the explicit-set reference engine, and decides independence
// (Definition 4.1). The two baseline analyses of the evaluation
// section — flat type sets [6] and schema-less path overlap [15]/[5] —
// are exposed through the same interface for comparison.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/infer"
	"xqindep/internal/obs"
	"xqindep/internal/pathanalysis"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/typeanalysis"
	"xqindep/internal/xquery"
)

// Method selects an analysis technique.
type Method int

const (
	// MethodChains is the paper's contribution run on the CDAG engine
	// (polynomial; the default).
	MethodChains Method = iota
	// MethodChainsExact is the same calculus over explicit chain sets
	// (exact w.r.t. Tables 1–2, exponential in the worst case).
	MethodChainsExact
	// MethodTypes is the Benedikt-Cheney type-set baseline [6].
	MethodTypes
	// MethodPaths is the schema-less path-overlap baseline [15]/[5].
	MethodPaths
	// MethodConservative is the bottom of the degradation ladder: it
	// performs no analysis and always answers "not independent". Since
	// every method is sound (a true verdict is a guarantee, a false
	// verdict is merely "could not prove"), answering false is always
	// safe — it can only cost precision, never correctness.
	MethodConservative
)

var methodNames = map[Method]string{
	MethodChains:       "chains",
	MethodChainsExact:  "chains-exact",
	MethodTypes:        "types",
	MethodPaths:        "paths",
	MethodConservative: "conservative",
}

// rungSpanNames precomputes the per-rung trace span names so opening
// a span never concatenates strings on the hot path (a nil trace must
// stay allocation-free).
var rungSpanNames = map[Method]string{
	MethodChains:       "rung:chains",
	MethodChainsExact:  "rung:chains-exact",
	MethodTypes:        "rung:types",
	MethodPaths:        "rung:paths",
	MethodConservative: "rung:conservative",
}

// fallbackLadder orders the methods tried when m exceeds its budget,
// strongest first. Every rung is sound, so swapping a stronger rung
// for a weaker one can only turn "independent" into "unknown" — never
// the reverse — and the ladder always terminates: MethodConservative
// consumes no budget at all.
func fallbackLadder(m Method) []Method {
	switch m {
	case MethodChainsExact:
		return []Method{MethodChainsExact, MethodChains, MethodTypes, MethodPaths, MethodConservative}
	case MethodChains:
		return []Method{MethodChains, MethodTypes, MethodPaths, MethodConservative}
	case MethodTypes:
		return []Method{MethodTypes, MethodPaths, MethodConservative}
	case MethodPaths:
		return []Method{MethodPaths, MethodConservative}
	default:
		return []Method{m}
	}
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod resolves a method name.
func ParseMethod(s string) (Method, error) {
	for m, name := range methodNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q (want chains, chains-exact, types or paths)", s)
}

// Result reports one independence decision.
type Result struct {
	Independent bool
	Method      Method
	// K is the multiplicity kq+ku of the finite analysis (chain
	// methods only).
	K int
	// Witnesses lists human-readable conflict evidence when dependent.
	Witnesses []string
	// Elapsed is the analysis wall-clock time.
	Elapsed time.Duration
	// Degraded reports that the requested method exceeded its budget
	// and Method is a weaker (but still sound) rung of the fallback
	// ladder. A degraded Independent=true verdict is still a proof.
	Degraded bool
	// FallbackChain lists every method attempted, strongest first,
	// ending with the one that produced the verdict. Empty unless
	// Degraded.
	FallbackChain []Method
	// Err is the budget error that forced the first degradation
	// (wraps guard.ErrBudgetExceeded). Nil unless Degraded.
	Err error
	// Plan reports prepared-plan provenance for the CDAG chain rung:
	// "warm" when the verdict came from a cached CompiledExpr, "cold"
	// when this request ran the inference stages. Empty for every
	// other method.
	Plan string
}

// Options configures AnalyzeContext.
type Options struct {
	// Limits bounds the analysis; zero fields take guard defaults.
	Limits guard.Limits
	// NoFallback disables the degradation ladder: a budget overrun is
	// returned as an error instead of a weaker verdict. It does NOT
	// disable the quarantine downgrade below — containment of a
	// suspected-unsound schema must not be optional.
	NoFallback bool
	// Quarantine is the containment registry consulted before every
	// analysis: while the schema's fingerprint is quarantined (a runtime
	// audit caught a wrong Independent verdict on it), the verdict is
	// downgraded to the conservative ladder rung without running the
	// suspect engines. Nil selects the process-wide quarantine.Shared(),
	// which downgrades nothing until an auditor records a disagreement.
	Quarantine *quarantine.Registry
	// Plans is the prepared-plan cache consulted by the CDAG chain
	// rung: the staged pipeline (fingerprint → lookup → k-factors →
	// inference) resolves repeated logical pairs to one cached
	// artifact. Nil selects the process-wide plan.Shared().
	Plans *plan.Cache
}

// Analyzer decides query-update independence for documents valid
// w.r.t. one schema.
type Analyzer struct {
	D *dtd.DTD
	// C is the compiled schema, resolved once through the shared
	// fingerprint-keyed cache; every analysis on this analyzer reuses
	// it. When compilation fails (alphabet beyond the SymID range) C is
	// nil and compileErr records why; since that error wraps
	// guard.ErrBudgetExceeded, the chain rungs report it as a budget
	// overrun and the ladder degrades to the type/path analyses, which
	// need no dense alphabet.
	C          *dtd.Compiled
	compileErr error
}

// NewAnalyzer builds an analyzer for the schema.
func NewAnalyzer(d *dtd.DTD) *Analyzer {
	c, err := dtd.Compile(d)
	return &Analyzer{D: d, C: c, compileErr: err}
}

// check verifies the pair is quasi-closed (only the root variable
// free), the form the whole calculus is stated for.
func check(q xquery.Query, u xquery.Update) error {
	if q == nil || u == nil {
		return fmt.Errorf("core: nil expression")
	}
	if !xquery.QuasiClosedQuery(q) {
		return fmt.Errorf("core: query has free variables besides %s", xquery.RootVar)
	}
	if !xquery.QuasiClosedUpdate(u) {
		return fmt.Errorf("core: update has free variables besides %s", xquery.RootVar)
	}
	return nil
}

// Analyze decides independence of the pair with the given method,
// under default limits and with the degradation ladder enabled.
func (a *Analyzer) Analyze(q xquery.Query, u xquery.Update, m Method) (Result, error) {
	return a.AnalyzeContext(context.Background(), q, u, m, Options{}) //xqvet:ignore ctxflow context-free convenience wrapper; cancellation-aware callers use AnalyzeContext
}

// AnalyzeContext decides independence of the pair with the given
// method under ctx and opts.Limits.
//
// When the method exceeds its budget (deadline, chain/node count, or
// multiplicity k beyond Limits.MaxK) and fallback is enabled, the
// analysis degrades along fallbackLadder(m): each weaker rung runs
// against the same (already partly spent) budget, and the final
// conservative rung costs nothing, so the call returns promptly after
// a deadline instead of failing. The degraded result records what
// happened in Degraded, FallbackChain and Err.
//
// An explicitly cancelled ctx returns context.Canceled with no
// verdict: cancellation means the caller no longer wants an answer,
// while a deadline means it wants the best answer available now.
//
// Any panic escaping the analysis internals is converted into a
// *guard.InternalError carrying the panic value and stack.
func (a *Analyzer) AnalyzeContext(ctx context.Context, q xquery.Query, u xquery.Update, m Method, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := methodNames[m]; !ok {
		return Result{}, fmt.Errorf("core: unknown method %v", m)
	}
	// The quasi-closedness check walks the AST and panics on foreign
	// node types; convert that to an InternalError here too.
	var cerr error
	if err := guard.Do(func() { cerr = check(q, u) }); err != nil {
		return Result{}, err
	}
	if cerr != nil {
		return Result{}, cerr
	}
	start := time.Now()
	reg := opts.Quarantine
	if reg == nil {
		reg = quarantine.Shared()
	}
	tr := obs.FromContext(ctx)
	if m != MethodConservative && reg.Downgrade(a.D.Fingerprint()) {
		tr.Mark("core.quarantine", 0, 0)
		// The fingerprint is quarantined: serve the conservative rung
		// directly. This is a pure downgrade (Independent=false is
		// always sound), reported through the same Degraded/Err contract
		// as a budget fallback so callers and dashboards need no new
		// case.
		return Result{
			Method:        MethodConservative,
			Independent:   false,
			Witnesses:     []string{"schema fingerprint quarantined after audit disagreement; conservatively assuming dependence"},
			Degraded:      true,
			FallbackChain: []Method{m, MethodConservative},
			Err:           quarantine.ErrQuarantined,
			Elapsed:       time.Since(start),
		}, nil
	}
	ladder := fallbackLadder(m)
	if opts.NoFallback {
		ladder = ladder[:1]
	}
	plans := opts.Plans
	if plans == nil {
		plans = plan.Shared()
	}
	var attempted []Method
	var firstBudgetErr error
	for i, rung := range ladder {
		attempted = append(attempted, rung)
		sp := tr.Start(rungSpanNames[rung])
		res, err := a.analyzeOnce(ctx, rung, q, u, opts.Limits, plans)
		if err == nil {
			if res.Plan != "" {
				sp.Annotate(res.Plan)
			}
			sp.End()
			res.Elapsed = time.Since(start)
			if i > 0 {
				res.Degraded = true
				res.FallbackChain = attempted
				res.Err = firstBudgetErr
			}
			return res, nil
		}
		if errors.Is(err, guard.ErrBudgetExceeded) {
			sp.Annotate("budget exceeded")
		}
		sp.End()
		if !errors.Is(err, guard.ErrBudgetExceeded) || i == len(ladder)-1 {
			// Internal errors, cancellation, malformed input — or a
			// budget overrun with nowhere left to fall.
			return Result{}, err
		}
		if firstBudgetErr == nil {
			firstBudgetErr = err
		}
	}
	// Unreachable: MethodConservative never errors.
	return Result{}, firstBudgetErr
}

// analyzeOnce runs a single ladder rung under a fresh budget, with
// the panic-to-error boundary installed.
func (a *Analyzer) analyzeOnce(ctx context.Context, m Method, q xquery.Query, u xquery.Update, lim guard.Limits, plans *plan.Cache) (res Result, err error) {
	defer guard.Recover(&err)
	b := guard.New(ctx, lim)
	b.Point("core.analyze")
	res.Method = m
	switch m {
	case MethodChains:
		if a.C == nil {
			return Result{}, fmt.Errorf("core: schema compilation failed: %w", a.compileErr)
		}
		c := a.C
		cache := plans
		if ferr := guard.FirePoint(b.Context(), "core.artifact"); ferr != nil {
			if !errors.Is(ferr, guard.ErrArtifactCorrupt) {
				return Result{}, ferr
			}
			// Chaos corrupt-artifact injection: analyze on a privately
			// corrupted copy (the shared cache resident stays intact —
			// corruption must not leak across requests). The copy's
			// damage is deterministic per schema. The plan cache is
			// bypassed entirely: a plan inferred under a corrupted
			// schema must never become a resident other requests hit.
			c = c.WithCorruption(int64(c.Checksum()) | 1)
			cache = nil
		}
		ce, warm, perr := plan.Prepare(cache, c, q, u, b)
		if perr != nil {
			return Result{}, perr
		}
		v := ce.Verdict()
		res.Independent = v.Independent
		res.K = v.K
		res.Witnesses = v.Reasons
		if warm {
			res.Plan = "warm"
		} else {
			res.Plan = "cold"
		}
	case MethodChainsExact:
		k := infer.KPair(q, u)
		if err := b.CheckK(k); err != nil {
			return Result{}, err
		}
		v := infer.IndependenceBudget(a.D, q, u, b)
		res.Independent = v.Independent
		res.K = v.K
		for _, c := range v.Conflicts {
			res.Witnesses = append(res.Witnesses, c.String())
		}
	case MethodTypes:
		v := typeanalysis.IndependenceBudget(a.D, q, u, b)
		res.Independent = v.Independent
		if !v.Independent {
			res.Witnesses = append(res.Witnesses, fmt.Sprintf("type overlap %v", v.Overlap))
		}
	case MethodPaths:
		v, perr := pathanalysis.IndependenceBudget(q, u, b)
		if perr != nil {
			return Result{}, perr
		}
		res.Independent = v.Independent
		if !v.Independent {
			res.Witnesses = append(res.Witnesses, fmt.Sprintf("path overlap %s vs %s", v.Witness[0], v.Witness[1]))
		}
	case MethodConservative:
		// No work, no budget use: always reachable, always sound.
		res.Independent = false
		res.Witnesses = []string{"analysis budget exceeded; conservatively assuming dependence"}
	default:
		return Result{}, fmt.Errorf("core: unknown method %v", m)
	}
	if ferr := guard.FirePoint(b.Context(), "core.verdict"); ferr != nil {
		if !errors.Is(ferr, guard.ErrVerdictFlip) {
			return Result{}, ferr
		}
		// Chaos flip-verdict injection: corrupt the rung verdict about
		// to be returned, simulating an unsound engine edge case. The
		// sentinel audit layer is responsible for catching the
		// Independent=true flips this produces.
		//xqvet:ignore verdictflow chaos flip-verdict injection is unsound by design; the sentinel audit catches it
		res.Independent = !res.Independent
	}
	return res, nil
}

// Independent is the one-call form of the default (CDAG chain)
// analysis.
func (a *Analyzer) Independent(q xquery.Query, u xquery.Update) (bool, error) {
	r, err := a.Analyze(q, u, MethodChains)
	return r.Independent, err
}

// Chains exposes the inferred chain evidence of the exact engine for
// diagnostics: return/used/element chains of the query and the update
// chains, all in dotted notation.
func (a *Analyzer) Chains(q xquery.Query, u xquery.Update) (ret, used, elem, upd []string, k int, err error) {
	if err := check(q, u); err != nil {
		return nil, nil, nil, nil, 0, err
	}
	k = infer.KPair(q, u)
	in := infer.New(a.D, k)
	qc := in.Query(in.RootEnv(), q)
	uc := in.Update(in.RootEnv(), u)
	return qc.Ret.Strings(), qc.Used.Strings(), qc.Elem.Strings(), uc.Strings(), k, nil
}
