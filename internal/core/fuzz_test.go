package core

import (
	"fmt"
	"math/rand"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// TestRandomizedSoundness is the repository's strongest validation:
// random (small) queries and updates are generated over fixed schemas,
// every analysis method is run, and any "independent" verdict is
// cross-checked by differential execution on a pool of random valid
// documents. A failure here means a hole in an inference rule.
func TestRandomizedSoundness(t *testing.T) {
	schemas := []*dtd.DTD{
		dtd.MustParse("doc <- (a | b)*\na <- c\nb <- c\nc <- ()"),
		dtd.MustParse(`
root <- x*, y*
x <- a?, b?
y <- z*
a <- #PCDATA
b <- ()
z <- a?
`),
		dtd.MustParse(`
r <- a
a <- (b | c)*
b <- a?
c <- #PCDATA
`),
	}
	const (
		pairsPerSchema = 300
		docsPerSchema  = 8
	)
	rng := rand.New(rand.NewSource(812))
	for si, d := range schemas {
		g := &exprGen{rng: rng, tags: d.Types}
		var docs []xmltree.Tree
		for i := 0; i < docsPerSchema; i++ {
			tr, err := d.GenerateTree(rng, 0.6, 6)
			if err != nil {
				t.Fatal(err)
			}
			docs = append(docs, tr)
		}
		a := NewAnalyzer(d)
		for p := 0; p < pairsPerSchema; p++ {
			q := g.query(2, []string{xquery.RootVar})
			u := g.update(2, []string{xquery.RootVar})
			for _, m := range []Method{MethodChains, MethodChainsExact, MethodTypes, MethodPaths} {
				res, err := a.Analyze(q, u, m)
				if err != nil {
					t.Fatalf("schema %d: Analyze(%v) on random pair: %v\nq = %s\nu = %s", si, m, err, q, u)
				}
				if !res.Independent {
					continue
				}
				if i := eval.DependentOnAny(docs, q, u); i >= 0 {
					// The technique's contract (paper §2/§4): updates are
					// assumed schema-preserving; only deletions are
					// covered unconditionally. A counterexample whose
					// updated document is invalid is outside the
					// contract for non-delete updates.
					if !deleteOnly(u) && !validAfter(d, docs[i], u) {
						continue
					}
					t.Errorf("schema %d: UNSOUND %v verdict\n  q = %s\n  u = %s\n  doc = %s",
						si, m, q, u, docs[i].Store.String(docs[i].Root))
				}
			}
		}
	}
}

// deleteOnly reports whether u performs no inserts, renames or
// replaces — the class of updates the analysis covers even when the
// schema is violated (no new chains are created).
func deleteOnly(u xquery.Update) bool {
	switch n := u.(type) {
	case xquery.UEmpty, xquery.Delete:
		return true
	case xquery.USeq:
		return deleteOnly(n.Left) && deleteOnly(n.Right)
	case xquery.UIf:
		return deleteOnly(n.Then) && deleteOnly(n.Else)
	case xquery.UFor:
		return deleteOnly(n.Body)
	case xquery.ULet:
		return deleteOnly(n.Body)
	default:
		return false
	}
}

// validAfter applies u to a copy of doc and reports whether the result
// still satisfies the schema.
func validAfter(d *dtd.DTD, doc xmltree.Tree, u xquery.Update) bool {
	s := xmltree.NewStore()
	root := s.Copy(doc.Store, doc.Root)
	if err := eval.Update(s, eval.RootEnv(root), u); err != nil {
		return true // runtime error: the run does not count
	}
	return d.IsValid(xmltree.NewTree(s, root))
}

// exprGen builds random expressions of the fragment.
type exprGen struct {
	rng   *rand.Rand
	tags  []string
	fresh int
}

func (g *exprGen) tag() string { return g.tags[g.rng.Intn(len(g.tags))] }

func (g *exprGen) freshVar() string {
	g.fresh++
	return fmt.Sprintf("$f%d", g.fresh)
}

func (g *exprGen) axis() xquery.Axis {
	axes := []xquery.Axis{
		xquery.Self, xquery.Child, xquery.Child, xquery.Descendant,
		xquery.DescendantOrSelf, xquery.Parent, xquery.Ancestor,
		xquery.AncestorOrSelf, xquery.PrecedingSibling, xquery.FollowingSibling,
	}
	return axes[g.rng.Intn(len(axes))]
}

func (g *exprGen) test() xquery.NodeTest {
	switch g.rng.Intn(5) {
	case 0:
		return xquery.AnyNode()
	case 1:
		return xquery.Wildcard()
	case 2:
		return xquery.Text()
	default:
		return xquery.Tag(g.tag())
	}
}

func (g *exprGen) step(vars []string) xquery.Query {
	return xquery.Step{Var: vars[g.rng.Intn(len(vars))], Axis: g.axis(), Test: g.test()}
}

func (g *exprGen) query(depth int, vars []string) xquery.Query {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return xquery.Empty{}
		case 1:
			return xquery.StringLit{Value: "s"}
		default:
			return g.step(vars)
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return xquery.Sequence{Left: g.query(depth-1, vars), Right: g.query(depth-1, vars)}
	case 1:
		v := g.freshVar()
		return xquery.For{Var: v, In: g.query(depth-1, vars), Return: g.query(depth-1, append(vars, v))}
	case 2:
		v := g.freshVar()
		return xquery.Let{Var: v, Bind: g.query(depth-1, vars), Return: g.query(depth-1, append(vars, v))}
	case 3:
		return xquery.If{Cond: g.query(depth-1, vars), Then: g.query(depth-1, vars), Else: g.query(depth-1, vars)}
	case 4:
		return xquery.Element{Tag: g.tag(), Content: g.query(depth-1, vars)}
	default:
		return g.step(vars)
	}
}

// update builds a random update; targets of insert/rename/replace are
// wrapped in a for-loop so the single-target rule rarely trips at
// runtime (multi-target runs are skipped by the oracle anyway).
func (g *exprGen) update(depth int, vars []string) xquery.Update {
	if depth <= 0 {
		return g.primitive(vars)
	}
	switch g.rng.Intn(6) {
	case 0:
		return xquery.USeq{Left: g.update(depth-1, vars), Right: g.update(depth-1, vars)}
	case 1:
		v := g.freshVar()
		return xquery.UFor{Var: v, In: g.query(depth-1, vars), Body: g.update(depth-1, append(vars, v))}
	case 2:
		v := g.freshVar()
		return xquery.ULet{Var: v, Bind: g.query(depth-1, vars), Body: g.update(depth-1, append(vars, v))}
	case 3:
		return xquery.UIf{Cond: g.query(depth-1, vars), Then: g.update(depth-1, vars), Else: g.update(depth-1, vars)}
	default:
		return g.primitive(vars)
	}
}

func (g *exprGen) primitive(vars []string) xquery.Update {
	v := g.freshVar()
	in := g.query(1, vars)
	inner := append(vars, v)
	target := xquery.Query(xquery.Var{Name: v})
	var body xquery.Update
	switch g.rng.Intn(4) {
	case 0:
		body = xquery.Delete{Target: g.query(1, inner)}
	case 1:
		body = xquery.Rename{Target: target, As: g.tag()}
	case 2:
		poss := []xquery.InsertPos{xquery.Into, xquery.IntoFirst, xquery.IntoLast, xquery.Before, xquery.After}
		body = xquery.Insert{
			Source: g.query(1, inner),
			Pos:    poss[g.rng.Intn(len(poss))],
			Target: target,
		}
	default:
		body = xquery.Replace{Target: target, Source: g.query(1, inner)}
	}
	return xquery.UFor{Var: v, In: in, Body: body}
}
