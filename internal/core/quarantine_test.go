package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/quarantine"
	"xqindep/internal/xquery"
)

func TestQuarantineDowngradesToConservative(t *testing.T) {
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")

	// The pair is independent on a clean fingerprint.
	r, err := a.Analyze(q, u, MethodChains)
	if err != nil || !r.Independent {
		t.Fatalf("clean analysis: %+v, %v", r, err)
	}

	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	reg.Quarantine(bib.Fingerprint())
	r, err = a.AnalyzeContext(context.Background(), q, u, MethodChains, Options{Quarantine: reg})
	if err != nil {
		t.Fatalf("quarantined analysis errored: %v", err)
	}
	if r.Independent {
		t.Fatal("quarantined fingerprint produced an Independent verdict")
	}
	if r.Method != MethodConservative || !r.Degraded {
		t.Fatalf("want degraded conservative verdict, got %+v", r)
	}
	if !errors.Is(r.Err, quarantine.ErrQuarantined) || !errors.Is(r.Err, guard.ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrQuarantined wrapping ErrBudgetExceeded", r.Err)
	}
	if len(r.FallbackChain) != 2 || r.FallbackChain[0] != MethodChains || r.FallbackChain[1] != MethodConservative {
		t.Fatalf("FallbackChain = %v", r.FallbackChain)
	}

	// NoFallback must not disable containment.
	r, err = a.AnalyzeContext(context.Background(), q, u, MethodChains, Options{Quarantine: reg, NoFallback: true})
	if err != nil || r.Independent || r.Method != MethodConservative {
		t.Fatalf("NoFallback bypassed quarantine: %+v, %v", r, err)
	}
}

func TestFlipVerdictInjectionFlips(t *testing.T) {
	faultinject.Enable()
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price") // independent when clean

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	ctx := faultinject.With(context.Background(), sched)
	r, err := a.AnalyzeContext(ctx, q, u, MethodChains, Options{})
	if err != nil {
		t.Fatalf("flip-verdict run errored: %v", err)
	}
	if r.Independent {
		t.Fatal("flip at core.verdict did not flip the Independent verdict")
	}

	// The flip is symmetric: a dependent pair flips to the unsound
	// Independent=true the sentinel must contain.
	u2 := xquery.MustParseUpdate("delete //title")
	sched = faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	r, err = a.AnalyzeContext(faultinject.With(context.Background(), sched), q, u2, MethodChains, Options{})
	if err != nil {
		t.Fatalf("flip-verdict run errored: %v", err)
	}
	if !r.Independent {
		t.Fatal("flip at core.verdict did not produce the unsound Independent verdict")
	}
}

func TestCorruptArtifactIsPrivateToTheRequest(t *testing.T) {
	faultinject.Enable()
	a := NewAnalyzer(bib)
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.artifact", Kind: faultinject.KindCorruptArtifact})
	ctx := faultinject.With(context.Background(), sched)
	// The corrupted run must complete without a panic escaping; its
	// verdict may be wrong in either direction.
	if _, err := a.AnalyzeContext(ctx, q, u, MethodChains, Options{}); err != nil {
		var ierr *guard.InternalError
		if errors.As(err, &ierr) {
			t.Fatalf("corrupt artifact escaped as internal error: %v", err)
		}
	}
	// The shared resident artifact must be untouched.
	if err := a.C.Verify(); err != nil {
		t.Fatalf("corruption leaked into the shared artifact: %v", err)
	}
	r, err := a.Analyze(q, u, MethodChains)
	if err != nil || !r.Independent {
		t.Fatalf("clean analysis after corrupted request: %+v, %v", r, err)
	}
}

func TestRandomAuditScheduleAlwaysArmsUnsoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		s := faultinject.RandomAuditSchedule(rng, 1+rng.Intn(4))
		desc := s.String()
		if !strings.Contains(desc, "corrupt-artifact") && !strings.Contains(desc, "flip-verdict") {
			t.Fatalf("schedule %d arms no unsoundness fault: %s", i, desc)
		}
	}
}
