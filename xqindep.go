// Package xqindep statically detects XML query-update independence in
// the presence of a schema, implementing the type-based chain analysis
// of Bidoit-Tollu, Colazzo and Ulliana, "Type-Based Detection of XML
// Query-Update Independence" (VLDB 2012).
//
// A query q and an update u are independent when executing u can never
// change the result of q on any document valid for the schema. The
// analyzer infers, from the DTD, the *chains* (root-to-node label
// sequences) a query returns and uses and the chains an update
// changes, and reports independence when no chain pair is in prefix
// conflict. Recursive schemas are handled by the paper's finite
// k-chain analysis; the default engine is the polynomial CDAG
// implementation.
//
// Typical use:
//
//	schema, _ := xqindep.ParseSchema("bib <- book*\nbook <- title\ntitle <- #PCDATA")
//	q, _ := xqindep.ParseQuery("//title")
//	u, _ := xqindep.ParseUpdate("for $x in //book return insert <author/> into $x")
//	ok, _ := schema.Independent(q, u)   // true: the update cannot affect //title
//
// Besides the static analysis the package evaluates queries and
// updates on documents (the paper's dynamic semantics), which is what
// view-maintenance applications need anyway: skip re-materialisation
// when Independent, re-run the query otherwise.
//
// For serving many concurrent analyses, NewPool wraps the analyzer in
// a bounded worker pool with admission control, per-schema circuit
// breakers, a prepared-plan cache, an optional runtime verdict audit,
// and an HTTP front end (Pool.Handler, Serve) whose operations surface
// — /statz, /metricz, /tracez, /incidentz — is documented in the
// README's "Operating xqindepd" section.
package xqindep

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/guard"
	"xqindep/internal/infer"
	"xqindep/internal/plan"
	"xqindep/internal/preserve"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// Schema is a parsed DTD or Extended DTD.
type Schema struct {
	d *dtd.DTD
	a *core.Analyzer
}

// ParseSchema parses a schema in compact notation ("a <- (b | c)*",
// one declaration per line, optional "start name" directive, EDTD
// labels in brackets) or classic <!ELEMENT ...> notation.
func ParseSchema(text string) (*Schema, error) {
	d, err := dtd.Parse(text)
	if err != nil {
		return nil, err
	}
	return &Schema{d: d, a: core.NewAnalyzer(d)}, nil
}

// MustParseSchema is ParseSchema, panicking on error.
func MustParseSchema(text string) *Schema {
	s, err := ParseSchema(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns the number of declared element types (|d|).
func (s *Schema) Size() int { return s.d.Size() }

// Start returns the start symbol.
func (s *Schema) Start() string { return s.d.Start }

// IsRecursive reports whether the schema is vertically recursive (the
// chain universe Cd is infinite and the finite k-analysis kicks in).
func (s *Schema) IsRecursive() bool { return s.d.IsRecursive() }

// String renders the schema in compact notation.
func (s *Schema) String() string { return s.d.String() }

// Fingerprint returns a stable content hash of the schema; two
// schemas with the same declarations share it regardless of input
// notation. The serving layer (Pool) keys its per-schema circuit
// breakers on it.
func (s *Schema) Fingerprint() string { return s.d.Fingerprint() }

// DTD exposes the underlying schema to the internal packages; it is
// the escape hatch for advanced integrations and tests.
func (s *Schema) DTD() *dtd.DTD { return s.d }

// CompiledSchema is the dense compiled artifact the chain analyses
// run on: symbols interned to small integers, reachability, sibling
// order and recursion precomputed as bitsets. It is immutable and safe
// for concurrent use; equal-fingerprint schemas share one instance
// through the process-wide compilation cache.
type CompiledSchema struct {
	c *dtd.Compiled
}

// Compile returns the compiled form of the schema, resolved through
// the fingerprint-keyed compilation cache: repeated calls — from any
// goroutine, for any Schema with the same declarations — return the
// shared artifact. Schemas beyond the compiled alphabet limit return
// an error wrapping ErrBudgetExceeded.
func (s *Schema) Compile() (*CompiledSchema, error) {
	c, err := dtd.Compile(s.d)
	if err != nil {
		return nil, err
	}
	return &CompiledSchema{c: c}, nil
}

// NumSymbols returns |Σ| including the synthetic string type.
func (cs *CompiledSchema) NumSymbols() int { return cs.c.NumSyms() }

// Fingerprint returns the content hash the cache keys on; it equals
// the source Schema's Fingerprint.
func (cs *CompiledSchema) Fingerprint() string { return cs.c.Fingerprint() }

// RecursiveTypes returns the number of types on a ⇒d cycle.
func (cs *CompiledSchema) RecursiveTypes() int { return cs.c.RecursiveCount() }

// CompileCacheStats reports the process-wide compilation cache
// counters; the analysis server exposes the same numbers on /statz.
func CompileCacheStats() dtd.CacheStats { return dtd.CompileCacheStats() }

// SharedPlanStats reports the process-wide prepared-plan cache used by
// AnalyzeContext when no explicit cache is configured. Pools maintain
// their own caches; see Pool.PlanStats.
func SharedPlanStats() plan.CacheStats { return plan.Shared().Stats() }

// Query is a parsed query of the supported XQuery fragment.
type Query struct {
	ast xquery.Query
	src string
}

// ParseQuery parses a query; XPath sugar (absolute paths, //,
// predicates, abbreviated steps) is desugared into the core fragment.
func ParseQuery(text string) (*Query, error) {
	q, err := xquery.ParseQuery(text)
	if err != nil {
		return nil, err
	}
	return &Query{ast: q, src: text}, nil
}

// MustParseQuery is ParseQuery, panicking on error.
func MustParseQuery(text string) *Query {
	q, err := ParseQuery(text)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

// Core returns the desugared core-fragment form.
func (q *Query) Core() string { return q.ast.String() }

// Fingerprint returns a stable content hash of the desugared query:
// sugared variants and whitespace differences of the same logical
// query share it. It is one half of the prepared-plan cache key.
func (q *Query) Fingerprint() string { return xquery.FingerprintQuery(q.ast) }

// Update is a parsed update of the supported XQuery Update Facility
// fragment.
type Update struct {
	ast xquery.Update
	src string
}

// ParseUpdate parses an update expression.
func ParseUpdate(text string) (*Update, error) {
	u, err := xquery.ParseUpdate(text)
	if err != nil {
		return nil, err
	}
	return &Update{ast: u, src: text}, nil
}

// MustParseUpdate is ParseUpdate, panicking on error.
func MustParseUpdate(text string) *Update {
	u, err := ParseUpdate(text)
	if err != nil {
		panic(err)
	}
	return u
}

// String returns the original update text.
func (u *Update) String() string { return u.src }

// Core returns the desugared core-fragment form.
func (u *Update) Core() string { return u.ast.String() }

// Fingerprint returns a stable content hash of the desugared update;
// see Query.Fingerprint.
func (u *Update) Fingerprint() string { return xquery.FingerprintUpdate(u.ast) }

// PairFingerprint returns the content hash of the (query, update)
// pair, the second component of the prepared-plan cache key (the first
// is the schema fingerprint).
func PairFingerprint(q *Query, u *Update) string {
	return xquery.FingerprintPair(q.ast, u.ast)
}

// Method selects the analysis technique.
type Method = core.Method

// Analysis methods: Chains is the paper's contribution on the
// polynomial CDAG engine (the default); ChainsExact runs the same
// calculus on explicit chain sets; Types and Paths are the two
// baselines of the paper's evaluation. Conservative is the bottom of
// the degradation ladder: no analysis, always "not independent".
const (
	Chains       = core.MethodChains
	ChainsExact  = core.MethodChainsExact
	Types        = core.MethodTypes
	Paths        = core.MethodPaths
	Conservative = core.MethodConservative
)

// Limits bounds the resources an analysis may consume. The zero value
// of any field selects a generous default; use guard.NoLimit semantics
// by setting very large values.
type Limits = guard.Limits

// Options configures AnalyzeContext.
type Options struct {
	// Limits bounds chain/node counts, multiplicity k and parser
	// recursion; zero fields take defaults.
	Limits Limits
	// NoFallback disables the degradation ladder: budget overruns are
	// returned as errors instead of weaker verdicts.
	NoFallback bool
}

// ErrBudgetExceeded is the sentinel wrapped by every budget-overrun
// error; test with errors.Is.
var ErrBudgetExceeded = guard.ErrBudgetExceeded

// InternalError is the typed wrapper for panics recovered at the
// analysis boundary; it carries the panic value and stack trace.
type InternalError = guard.InternalError

// Report is the outcome of one analysis.
type Report struct {
	// Independent is the verdict; false means "dependence could not be
	// excluded" (the analysis is sound but necessarily incomplete).
	Independent bool
	// Method that produced the verdict.
	Method Method
	// K is the multiplicity kq+ku of the finite analysis (chain
	// methods).
	K int
	// Witnesses holds conflict evidence when dependent.
	Witnesses []string
	// Elapsed is the analysis time.
	Elapsed time.Duration
	// Degraded reports that the requested method exceeded its budget
	// and Method is a weaker — but still sound — technique from the
	// fallback ladder. A degraded Independent=true is still a proof;
	// a degraded Independent=false may just mean "ran out of budget".
	Degraded bool
	// FallbackChain lists every method attempted, strongest first,
	// ending with the one that produced the verdict (set when
	// Degraded).
	FallbackChain []Method
	// Err is the budget error that forced the first degradation (set
	// when Degraded; wraps ErrBudgetExceeded).
	Err error
	// Plan reports prepared-plan provenance for chain verdicts: "warm"
	// when the verdict was served from a cached compiled plan, "cold"
	// when this request built (and cached) the plan. Empty for methods
	// that do not go through the plan pipeline.
	Plan string
}

// Independent runs the default chain analysis and reports the verdict.
func (s *Schema) Independent(q *Query, u *Update) (bool, error) {
	return s.a.Independent(q.ast, u.ast)
}

// Analyze runs the selected analysis under default limits and returns
// the full report.
func (s *Schema) Analyze(q *Query, u *Update, m Method) (Report, error) {
	return s.AnalyzeContext(context.Background(), q, u, m, Options{}) //xqvet:ignore ctxflow context-free convenience wrapper; cancellation-aware callers use AnalyzeContext
}

// AnalyzeContext runs the selected analysis under ctx and opts.
//
// The analysis observes ctx cooperatively: a deadline makes it
// degrade along the sound fallback ladder (chains-exact → chains →
// types → paths → conservative "not independent"), recorded in the
// report's Degraded/FallbackChain/Err fields, while an explicit
// cancellation returns context.Canceled with no verdict. Budget
// overruns (opts.Limits) degrade the same way unless opts.NoFallback
// is set. Internal panics surface as *InternalError rather than
// crashing the caller.
func (s *Schema) AnalyzeContext(ctx context.Context, q *Query, u *Update, m Method, opts Options) (Report, error) {
	r, err := s.a.AnalyzeContext(ctx, q.ast, u.ast, m, core.Options{
		Limits:     opts.Limits,
		NoFallback: opts.NoFallback,
	})
	if err != nil {
		return Report{}, err
	}
	return reportFromResult(r), nil
}

// Commute decides update-update commutativity: whether applying u1
// and u2 in either order is guaranteed to produce the same document on
// every valid input. This extends the chain framework to the
// commutativity problem of Ghelli, Rose and Siméon; like Independent,
// a true verdict is a guarantee and false may be a false alarm.
func (s *Schema) Commute(u1, u2 *Update) (bool, error) {
	if !xquery.QuasiClosedUpdate(u1.ast) || !xquery.QuasiClosedUpdate(u2.ast) {
		return false, fmt.Errorf("xqindep: updates must be quasi-closed")
	}
	return infer.Commutativity(s.d, u1.ast, u2.ast).Commute, nil
}

// PreservesSchema statically checks that the update keeps every valid
// document valid — the precondition under which the independence
// analysis covers insert, rename and replace updates (deletions are
// covered unconditionally). A true verdict is a guarantee; when false,
// the returned reasons describe the potential violations (which may be
// false alarms).
func (s *Schema) PreservesSchema(u *Update) (bool, []string) {
	v := preserve.Check(s.d, u.ast)
	return v.Preserves, v.Reasons
}

// ChainEvidence holds the inferred chains of the exact engine, for
// explanation and debugging.
type ChainEvidence struct {
	Return  []string // chains of returned input nodes
	Used    []string // chains of inspected input nodes
	Element []string // chains of constructed elements
	Update  []string // update chains c:c'
	K       int      // multiplicity of the finite analysis
}

// ExplainChains returns the chain sets behind a verdict.
func (s *Schema) ExplainChains(q *Query, u *Update) (ChainEvidence, error) {
	ret, used, elem, upd, k, err := s.a.Chains(q.ast, u.ast)
	if err != nil {
		return ChainEvidence{}, err
	}
	return ChainEvidence{Return: ret, Used: used, Element: elem, Update: upd, K: k}, nil
}

// Document is a mutable XML document.
type Document struct {
	tree xmltree.Tree
}

// ParseDocument reads an XML document (elements and text only;
// attributes and comments are discarded, matching the paper's data
// model).
func ParseDocument(r io.Reader) (*Document, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(text string) (*Document, error) {
	t, err := xmltree.ParseString(text)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// MustParseDocument is ParseDocumentString, panicking on error.
func MustParseDocument(text string) *Document {
	d, err := ParseDocumentString(text)
	if err != nil {
		panic(err)
	}
	return d
}

// String serialises the document.
func (doc *Document) String() string { return doc.tree.Store.String(doc.tree.Root) }

// Copy returns an independent deep copy.
func (doc *Document) Copy() *Document {
	s := xmltree.NewStore()
	root := s.Copy(doc.tree.Store, doc.tree.Root)
	return &Document{tree: xmltree.NewTree(s, root)}
}

// Size returns the number of nodes in the document.
func (doc *Document) Size() int { return len(doc.tree.Store.Domain(doc.tree.Root)) }

// Validate checks the document against the schema.
func (s *Schema) Validate(doc *Document) error { return s.d.Validate(doc.tree) }

// Generate builds a pseudo-random document valid for the schema.
// pRepeat in [0,1) controls repetition of starred content; maxDepth
// bounds the tree height.
func (s *Schema) Generate(seed int64, pRepeat float64, maxDepth int) (*Document, error) {
	t, err := s.d.GenerateTree(rand.New(rand.NewSource(seed)), pRepeat, maxDepth)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// Run evaluates the query on the document and returns the serialised
// result fragments in order. The document is not modified.
func (doc *Document) Run(q *Query) ([]string, error) {
	s, locs, err := eval.QueryTree(doc.tree, q.ast)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = s.String(l)
	}
	return out, nil
}

// Apply executes the update on the document in place (UPL
// construction, sanity checks, application — the W3C three phases).
func (doc *Document) Apply(u *Update) error {
	return eval.Update(doc.tree.Store, eval.RootEnv(doc.tree.Root), u.ast)
}

// IndependentOn checks Definition 2.4 dynamically on one document:
// it evaluates q, applies u to a copy, re-evaluates, and compares the
// results up to value equivalence. It is the runtime ground truth the
// static analysis approximates.
func IndependentOn(doc *Document, q *Query, u *Update) (bool, error) {
	return eval.IndependentOn(doc.tree, q.ast, u.ast)
}

// Version identifies the library release.
const Version = "1.0.0"
