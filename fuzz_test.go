package xqindep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"xqindep/internal/xmark"
)

// FuzzAnalyzeContext drives the whole engine — schema, query and
// update parsing followed by every analysis method under a starvation
// budget — with arbitrary inputs. The invariants: malformed input is
// an ordinary error, a budget overrun degrades or errors but never
// hangs, and under no circumstances does a panic escape (an escaped
// panic would surface as *InternalError, which the fuzzer treats as a
// bug).
func FuzzAnalyzeContext(f *testing.F) {
	const recursive = "r <- (x | y | z)*\nx <- (x | y | z)*\ny <- (x | y | z)*\nz <- #PCDATA"
	const bib = "bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- #PCDATA\nprice <- #PCDATA"
	f.Add(bib, "//title", "delete //price")
	f.Add(bib, "for $b in //book return if ($b/author) then $b/title else ()", "for $x in //book return insert <author/> into $x")
	f.Add(recursive, "//y//z", "delete //x//z")
	f.Add(recursive, "//x//y//x//y//z", "delete //y//x//y//x//z")
	f.Add(xmark.SchemaText, "/site/people/person/name", "delete //price")
	f.Add(xmark.SchemaText, "//closed_auction//keyword", "for $p in /site/people/person return delete $p/homepage")

	methods := []Method{Chains, ChainsExact, Types, Paths}
	lim := Limits{MaxK: 6, MaxChains: 1 << 12, MaxNodes: 1 << 14}
	f.Fuzz(func(t *testing.T, ds, qs, us string) {
		s, err := ParseSchema(ds)
		if err != nil {
			return
		}
		q, err := ParseQuery(qs)
		if err != nil {
			return
		}
		u, err := ParseUpdate(us)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, m := range methods {
			rep, err := s.AnalyzeContext(ctx, q, u, m, Options{Limits: lim})
			if err != nil {
				var ie *InternalError
				if errors.As(err, &ie) {
					t.Fatalf("internal error (escaped panic) for method %v:\nschema: %q\nquery: %q\nupdate: %q\n%v", m, ds, qs, us, err)
				}
				continue
			}
			if rep.Degraded && !errors.Is(rep.Err, ErrBudgetExceeded) {
				t.Fatalf("degraded verdict without a budget error: %+v", rep)
			}
		}
	})
}

// FuzzParseDocument throws arbitrary bytes at the document parser.
// Seeds are the documents shipped in examples/. Invariants: malformed
// input is an ordinary error (no panic, no hang), and an accepted
// document serialises to a canonical form the parser accepts again and
// reproduces bit-for-bit (parse∘print is a projection).
func FuzzParseDocument(f *testing.F) {
	// The example documents, verbatim (examples/{quickstart,viewmaint,
	// xmlschema}/main.go), plus edge shapes.
	f.Add("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>")
	f.Add(`<site>
  <items>
    <item><name>clock</name><description>antique <keyword>rare</keyword></description><mailbox><mail>q1</mail></mailbox></item>
    <item><name>vase</name><description>ming</description><mailbox/></item>
  </items>
  <auctions>
    <auction><itemname>clock</itemname><price>100</price><bidder>ann</bidder></auction>
    <auction><itemname>vase</itemname><price>40</price></auction>
  </auctions>
</site>`)
	f.Add(`<directory>
  <person><name><first>Ada</first><last>Lovelace</last></name><email>ada@x</email></person>
  <company><name>Analytical Engines Ltd</name><sector>compute</sector></company>
</directory>`)
	f.Add("<r><x><y><z>deep</z></y></x></r>")
	f.Add("<a/>")
	f.Add("<a>&lt;not a tag&gt;</a>")
	f.Add("<a><!-- comment --><b attr=\"dropped\"/>text</a>")
	f.Add("")
	f.Add("<unclosed>")
	f.Add(strings.Repeat("<a>", 200) + strings.Repeat("</a>", 200))

	f.Fuzz(func(t *testing.T, text string) {
		doc, err := ParseDocumentString(text)
		if err != nil {
			return
		}
		if doc.Size() < 1 {
			t.Fatalf("accepted document with %d nodes: %q", doc.Size(), text)
		}
		// Round trip: the serialised form must parse, and its own
		// serialisation must be identical (canonicalisation reached a
		// fixed point after one step).
		out := doc.String()
		doc2, err := ParseDocumentString(out)
		if err != nil {
			t.Fatalf("serialised form rejected: %v\ninput:  %q\noutput: %q", err, text, out)
		}
		if out2 := doc2.String(); out2 != out {
			t.Fatalf("serialisation not a fixed point:\nfirst:  %q\nsecond: %q", out, out2)
		}
		// Copy must be deep and equal.
		if c := doc.Copy(); c.String() != out {
			t.Fatalf("copy differs:\norig: %q\ncopy: %q", out, c.String())
		}
	})
}
