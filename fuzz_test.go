package xqindep

import (
	"context"
	"errors"
	"testing"
	"time"

	"xqindep/internal/xmark"
)

// FuzzAnalyzeContext drives the whole engine — schema, query and
// update parsing followed by every analysis method under a starvation
// budget — with arbitrary inputs. The invariants: malformed input is
// an ordinary error, a budget overrun degrades or errors but never
// hangs, and under no circumstances does a panic escape (an escaped
// panic would surface as *InternalError, which the fuzzer treats as a
// bug).
func FuzzAnalyzeContext(f *testing.F) {
	const recursive = "r <- (x | y | z)*\nx <- (x | y | z)*\ny <- (x | y | z)*\nz <- #PCDATA"
	const bib = "bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- #PCDATA\nprice <- #PCDATA"
	f.Add(bib, "//title", "delete //price")
	f.Add(bib, "for $b in //book return if ($b/author) then $b/title else ()", "for $x in //book return insert <author/> into $x")
	f.Add(recursive, "//y//z", "delete //x//z")
	f.Add(recursive, "//x//y//x//y//z", "delete //y//x//y//x//z")
	f.Add(xmark.SchemaText, "/site/people/person/name", "delete //price")
	f.Add(xmark.SchemaText, "//closed_auction//keyword", "for $p in /site/people/person return delete $p/homepage")

	methods := []Method{Chains, ChainsExact, Types, Paths}
	lim := Limits{MaxK: 6, MaxChains: 1 << 12, MaxNodes: 1 << 14}
	f.Fuzz(func(t *testing.T, ds, qs, us string) {
		s, err := ParseSchema(ds)
		if err != nil {
			return
		}
		q, err := ParseQuery(qs)
		if err != nil {
			return
		}
		u, err := ParseUpdate(us)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, m := range methods {
			rep, err := s.AnalyzeContext(ctx, q, u, m, Options{Limits: lim})
			if err != nil {
				var ie *InternalError
				if errors.As(err, &ie) {
					t.Fatalf("internal error (escaped panic) for method %v:\nschema: %q\nquery: %q\nupdate: %q\n%v", m, ds, qs, us, err)
				}
				continue
			}
			if rep.Degraded && !errors.Is(rep.Err, ErrBudgetExceeded) {
				t.Fatalf("degraded verdict without a budget error: %+v", rep)
			}
		}
	})
}
