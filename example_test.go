package xqindep_test

import (
	"context"
	"fmt"

	"xqindep"
)

// The one-shot form: parse the schema and the pair, run the default
// chain analysis, act on the report. An Independent=true verdict is a
// proof — executing the update can never change the query's result on
// any document valid for the schema — so a view-maintenance caller can
// skip re-materialisation outright.
func Example() {
	schema := xqindep.MustParseSchema(
		"bib <- book*\nbook <- (title, author*)\ntitle <- #PCDATA\nauthor <- #PCDATA")
	q := xqindep.MustParseQuery("//title")
	u := xqindep.MustParseUpdate("for $x in //book return insert <author/> into $x")

	rep, err := schema.Analyze(q, u, xqindep.Chains)
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	fmt.Printf("independent=%v method=%s k=%d\n", rep.Independent, rep.Method, rep.K)
	// Output: independent=true method=chains k=4
}

// The serving form: a pool runs analyses through admission control on
// a bounded worker set and reuses prepared plans across requests — the
// second analysis of the same logical pair is served from the plan
// cache ("warm") without re-running the inference pipeline. Pools must
// be closed to release their workers.
func ExampleNewPool() {
	pool := xqindep.NewPool(xqindep.PoolOptions{Workers: 2})
	defer pool.Close()

	schema := xqindep.MustParseSchema(
		"bib <- book*\nbook <- (title, author*)\ntitle <- #PCDATA\nauthor <- #PCDATA")
	q := xqindep.MustParseQuery("//title")
	u := xqindep.MustParseUpdate("for $x in //book return insert <author/> into $x")

	first, err := pool.Analyze(context.Background(), schema, q, u, xqindep.Chains, xqindep.Options{})
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	second, err := pool.Analyze(context.Background(), schema, q, u, xqindep.Chains, xqindep.Options{})
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	fmt.Printf("independent=%v plan: first=%s second=%s\n",
		second.Independent, first.Plan, second.Plan)
	// Output: independent=true plan: first=cold second=warm
}
