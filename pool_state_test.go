package xqindep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xqindep/internal/faultinject"
)

// TestPoolStateSurvivesRestart is the public-surface restart proof: a
// fingerprint quarantined by the audit lane in one pool life is still
// refused by a second life pointed at the same state directory, before
// any new audit evidence exists — even with auditing disabled in the
// second life.
func TestPoolStateSurvivesRestart(t *testing.T) {
	faultinject.Enable()
	dir := t.TempDir()
	schema := MustParseSchema(bibSchema)
	q := MustParseQuery("//title")

	// Life 1: an injected verdict flip on a dependent pair is audited,
	// refuted, and quarantined; the incident reaches both the durable
	// spool under the state directory and the caller's AuditSpool copy.
	var copySpool bytes.Buffer
	p := NewPool(PoolOptions{Workers: 1, AuditRate: 1, StateDir: dir, AuditSpool: &copySpool})
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	rep, err := p.Analyze(faultinject.With(context.Background(), sched), schema, q, MustParseUpdate("delete //title"), Chains, Options{})
	if err != nil || !rep.Independent {
		t.Fatalf("flip not served: %+v, %v", rep, err)
	}
	p.Flush()
	if got := p.QuarantineState(schema); got != "quarantined" {
		t.Fatalf("life 1 quarantine state %s", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "incidents.jsonl"))
	if err != nil || !strings.Contains(string(b), `"audit-disagreement"`) {
		t.Fatalf("durable incident spool: %v %q", err, b)
	}
	if !strings.Contains(copySpool.String(), `"audit-disagreement"`) {
		t.Fatalf("audit spool copy missing the incident: %q", copySpool.String())
	}

	// Life 2: auditing OFF — the restored decision alone downgrades a
	// genuinely independent pair to the conservative verdict.
	p2 := NewPool(PoolOptions{Workers: 1, StateDir: dir})
	defer p2.Close()
	st, serr := p2.StateStatus()
	if serr != nil || st.RestoredFingerprints != 1 {
		t.Fatalf("restored state: %+v, %v", st, serr)
	}
	if got := p2.QuarantineState(schema); got != "quarantined" {
		t.Fatalf("life 2 quarantine state %s", got)
	}
	rep, err = p2.Analyze(context.Background(), schema, q, MustParseUpdate("delete //price"), Chains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Independent || !errors.Is(rep.Err, ErrQuarantined) {
		t.Fatalf("restart served the quarantined schema un-downgraded: %+v", rep)
	}
}

// TestPoolStateStatusWithoutStateDir pins the zero-value contract.
func TestPoolStateStatusWithoutStateDir(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	defer p.Close()
	st, err := p.StateStatus()
	if err != nil || st.Dir != "" {
		t.Fatalf("StateStatus without StateDir: %+v, %v", st, err)
	}
}

// TestPoolStateOpenFailureSurfaces pins that an unusable state
// directory does not fail NewPool but is reported by StateStatus, so
// the daemon can refuse to serve without the durability it was asked
// for.
func TestPoolStateOpenFailureSurfaces(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolOptions{Workers: 1, StateDir: file})
	defer p.Close()
	if _, err := p.StateStatus(); err == nil {
		t.Fatal("StateStatus did not surface the open failure")
	}
	// The pool still serves (without durability).
	if _, err := p.Analyze(context.Background(), MustParseSchema(bibSchema),
		MustParseQuery("//title"), MustParseUpdate("delete //price"), Chains, Options{}); err != nil {
		t.Fatal(err)
	}
}
