package xqindep

// The benchmarks in this file regenerate the measurements behind every
// panel of the paper's Figure 3 (see DESIGN.md §7 and EXPERIMENTS.md):
//
//	BenchmarkFigure3a…  — static analysis time per update vs all views
//	BenchmarkFigure3b…  — full 36×31 matrix classification cost
//	BenchmarkFigure3c…  — view re-materialisation under each strategy
//	BenchmarkFigure3d…  — R-benchmark chain-inference scalability
//	BenchmarkConflictCheck — the CDAG comparison step alone (§6.1)
//
// cmd/xqbench renders the same experiments as paper-style tables.

import (
	"context"
	"fmt"
	"testing"

	"xqindep/internal/cdag"
	"xqindep/internal/core"
	"xqindep/internal/eval"
	"xqindep/internal/pathanalysis"
	"xqindep/internal/plan"
	"xqindep/internal/rbench"
	"xqindep/internal/refcdag"
	"xqindep/internal/typeanalysis"
	"xqindep/internal/xmark"
	"xqindep/internal/xmltree"
)

// BenchmarkFigure3aChains measures, per update, the chain analysis
// (CDAG engine, k = kq+ku) against all 36 views — the solid series of
// Figure 3.a.
func BenchmarkFigure3aChains(b *testing.B) {
	d := xmark.Schema()
	views := xmark.Views()
	for _, u := range xmark.Updates() {
		b.Run(u.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, v := range views {
					cdag.Independence(d, v.AST, u.AST)
				}
			}
		})
	}
}

// BenchmarkFigure3aTypes is the baseline series of Figure 3.a: the
// type-set analysis of [6] per update against all views.
func BenchmarkFigure3aTypes(b *testing.B) {
	d := xmark.Schema()
	views := xmark.Views()
	for _, u := range xmark.Updates() {
		b.Run(u.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ta := typeanalysis.New(d)
				for _, v := range views {
					ta.CheckIndependence(v.AST, u.AST)
				}
			}
		})
	}
}

// BenchmarkFigure3bMatrix classifies the full 36×31 pair matrix with
// each technique — the work behind the precision bars of Figure 3.b.
func BenchmarkFigure3bMatrix(b *testing.B) {
	d := xmark.Schema()
	views := xmark.Views()
	updates := xmark.Updates()
	b.Run("chains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range updates {
				for _, v := range views {
					cdag.Independence(d, v.AST, u.AST)
				}
			}
		}
	})
	b.Run("types", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ta := typeanalysis.New(d)
			for _, u := range updates {
				for _, v := range views {
					ta.CheckIndependence(v.AST, u.AST)
				}
			}
		}
	})
	b.Run("paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range updates {
				for _, v := range views {
					pathanalysis.Independence(v.AST, u.AST)
				}
			}
		}
	})
}

// BenchmarkFigure3cRefresh measures average view refresh time after an
// update at three document scales, under the three strategies of
// Figure 3.c: refresh-all, refresh those not independent per the type
// baseline, refresh those not independent per chains.
func BenchmarkFigure3cRefresh(b *testing.B) {
	d := xmark.Schema()
	views := xmark.Views()
	updates := xmark.Updates()
	// Verdict tables, computed outside the timed loops.
	ta := typeanalysis.New(d)
	chainIndep := map[string]map[string]bool{}
	typeIndep := map[string]map[string]bool{}
	for _, u := range updates {
		chainIndep[u.Name] = map[string]bool{}
		typeIndep[u.Name] = map[string]bool{}
		for _, v := range views {
			chainIndep[u.Name][v.Name] = cdag.Independence(d, v.AST, u.AST).Independent
			typeIndep[u.Name][v.Name] = ta.CheckIndependence(v.AST, u.AST).Independent
		}
	}
	for _, factor := range []float64{1, 4, 16} {
		base := xmark.GenerateDocument(77, factor)
		// One representative updated document per update.
		updated := make(map[string]xmltree.Tree, len(updates))
		for _, u := range updates {
			s := xmltree.NewStore()
			root := s.Copy(base.Store, base.Root)
			if err := eval.Update(s, eval.RootEnv(root), u.AST); err != nil {
				b.Fatal(err)
			}
			updated[u.Name] = xmltree.NewTree(s, root)
		}
		strategies := []struct {
			name  string
			indep map[string]map[string]bool
		}{
			{"refresh-all", nil},
			{"types", typeIndep},
			{"chains", chainIndep},
		}
		for _, st := range strategies {
			b.Run(fmt.Sprintf("factor=%g/%s", factor, st.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, u := range updates {
						doc := updated[u.Name]
						for _, v := range views {
							if st.indep != nil && st.indep[u.Name][v.Name] {
								continue
							}
							s := xmltree.NewStore()
							root := s.Copy(doc.Store, doc.Root)
							if _, err := eval.Query(s, eval.RootEnv(root), v.AST); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			})
		}
	}
}

// BenchmarkFigure3dInference measures CDAG chain inference of em over
// dn at k ∈ {m, m+5, m+10}, plus the XMark ("auctions") column — the
// scalability surface of Figure 3.d.
func BenchmarkFigure3dInference(b *testing.B) {
	for _, n := range []int{1, 3, 5, 10, 20} {
		d := rbench.SchemaN(n)
		for _, m := range []int{1, 5, 10} {
			q := rbench.ExprM(m)
			for _, dk := range []int{0, 5, 10} {
				k := m + dk
				b.Run(fmt.Sprintf("d%d/e%d/k=%d", n, m, k), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e := cdag.NewEngine(d, k, 0)
						e.Query(e.RootEnv(), q)
					}
				})
			}
		}
	}
	d := xmark.Schema()
	for _, m := range []int{1, 5, 10} {
		q := rbench.ExprM(m)
		for _, dk := range []int{0, 5, 10} {
			k := m + dk
			b.Run(fmt.Sprintf("auctions/e%d/k=%d", m, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := cdag.NewEngine(d, k, 0)
					e.Query(e.RootEnv(), q)
				}
			})
		}
	}
}

// BenchmarkConflictCheck isolates the CDAG comparison step (§6.1:
// O(c·|q|·|u|)): the chain DAGs are inferred once, only the three
// conflict checks are timed.
func BenchmarkConflictCheck(b *testing.B) {
	d := xmark.Schema()
	v, _ := xmark.ViewByName("A3")
	u, _ := xmark.UpdateByName("UB2")
	e := cdag.EngineFor(d, v.AST, u.AST)
	qc := e.Query(e.RootEnv(), v.AST)
	uc := e.Update(e.RootEnv(), u.AST)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdag.ConflictRetUpdate(qc.Ret, uc)
		cdag.ConflictUpdateRet(uc, qc.Ret)
		cdag.ConflictUpdateUsed(uc, qc.Used)
	}
}

// BenchmarkCompiledVsReference pits the dense compiled-schema engine
// against the retained map-based reference (internal/refcdag) on one
// representative XMark pair, for the two phases the compiled-schema
// refactor targets: DAG inference (query + update chains from scratch)
// and the isolated conflict-check step. cmd/xqbench -compiled-bench
// writes the same comparison to BENCH_compiledschema.json.
func BenchmarkCompiledVsReference(b *testing.B) {
	d := xmark.Schema()
	v, _ := xmark.ViewByName("A3")
	u, _ := xmark.UpdateByName("UB2")

	b.Run("infer/reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := refcdag.EngineFor(d, v.AST, u.AST)
			e.Query(e.RootEnv(), v.AST)
			e.Update(e.RootEnv(), u.AST)
		}
	})
	b.Run("infer/dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := cdag.EngineFor(d, v.AST, u.AST)
			e.Query(e.RootEnv(), v.AST)
			e.Update(e.RootEnv(), u.AST)
		}
	})

	re := refcdag.EngineFor(d, v.AST, u.AST)
	rq := re.Query(re.RootEnv(), v.AST)
	ru := re.Update(re.RootEnv(), u.AST)
	b.Run("conflict/reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refcdag.ConflictRetUpdate(rq.Ret, ru)
			refcdag.ConflictUpdateRet(ru, rq.Ret)
			refcdag.ConflictUpdateUsed(ru, rq.Used)
		}
	})
	de := cdag.EngineFor(d, v.AST, u.AST)
	dq := de.Query(de.RootEnv(), v.AST)
	du := de.Update(de.RootEnv(), u.AST)
	b.Run("conflict/dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cdag.ConflictRetUpdate(dq.Ret, du)
			cdag.ConflictUpdateRet(du, dq.Ret)
			cdag.ConflictUpdateUsed(du, dq.Used)
		}
	})
}

// BenchmarkEvaluator covers the dynamic-semantics substrate: one
// deep view and one update on a mid-size document.
func BenchmarkEvaluator(b *testing.B) {
	doc := xmark.GenerateDocument(9, 4)
	v, _ := xmark.ViewByName("A3")
	u, _ := xmark.UpdateByName("UI4")
	b.Run("query-A3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := xmltree.NewStore()
			root := s.Copy(doc.Store, doc.Root)
			if _, err := eval.Query(s, eval.RootEnv(root), v.AST); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-UI4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := xmltree.NewStore()
			root := s.Copy(doc.Store, doc.Root)
			if err := eval.Update(s, eval.RootEnv(root), u.AST); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xmark.GenerateDocument(int64(i), 1)
		}
	})
}

// BenchmarkPreparedVsCold measures one full 36×31 XMark matrix pass
// through the staged analysis pipeline, cold (a fresh plan cache per
// iteration, so every pair fingerprints, infers and conflict-checks
// from scratch) against warm (one cache populated before the timer, so
// every pair is a fingerprint-keyed lookup plus the per-request
// admission recheck). cmd/xqbench -plan-bench writes the same
// comparison, with per-request percentiles, to BENCH_plancache.json.
func BenchmarkPreparedVsCold(b *testing.B) {
	d := xmark.Schema()
	a := core.NewAnalyzer(d)
	views, updates := xmark.Views(), xmark.Updates()
	ctx := context.Background()
	pass := func(b *testing.B, opts core.Options) {
		b.Helper()
		for _, v := range views {
			for _, u := range updates {
				if _, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts); err != nil {
					b.Fatalf("%s×%s: %v", v.Name, u.Name, err)
				}
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pass(b, core.Options{Plans: plan.NewCache(plan.DefaultCacheSize)})
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		opts := core.Options{Plans: plan.NewCache(plan.DefaultCacheSize)}
		pass(b, opts) // populate: the timed passes all hit
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pass(b, opts)
		}
	})
}
