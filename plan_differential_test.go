package xqindep

import (
	"context"
	"fmt"
	"testing"

	"xqindep/internal/core"
	"xqindep/internal/plan"
	"xqindep/internal/xmark"
)

// TestPreparedMatrixMatchesCold is the plan cache's equivalence proof:
// over the full 36×31 XMark matrix, a verdict served from a warm
// prepared plan must be byte-identical — Independent, Method, K and
// every witness string — to the verdict the cold build produced.
// Elapsed and the Plan provenance tag are the only fields allowed to
// differ. Run under -race (scripts/ci.sh does) this also exercises the
// cache's locking on the exact production access pattern.
func TestPreparedMatrixMatchesCold(t *testing.T) {
	a := core.NewAnalyzer(xmark.Schema())
	views, updates := xmark.Views(), xmark.Updates()
	if testing.Short() {
		views, updates = views[:8], updates[:8]
	}
	cache := plan.NewCache(plan.DefaultCacheSize)
	opts := core.Options{Plans: cache}
	ctx := context.Background()

	// fingerprint flattens the comparable part of a result; Elapsed and
	// Plan are deliberately excluded.
	fingerprint := func(r core.Result) string {
		return fmt.Sprintf("indep=%v method=%s k=%d degraded=%v witnesses=%q",
			r.Independent, r.Method, r.K, r.Degraded, r.Witnesses)
	}

	cold := make(map[string]string, len(views)*len(updates))
	for _, v := range views {
		for _, u := range updates {
			res, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts)
			if err != nil {
				t.Fatalf("cold %s×%s: %v", v.Name, u.Name, err)
			}
			if res.Plan != "cold" {
				t.Fatalf("cold %s×%s served %q", v.Name, u.Name, res.Plan)
			}
			cold[v.Name+"×"+u.Name] = fingerprint(res)
		}
	}
	if st := cache.Stats(); st.Resident != int64(len(views)*len(updates)) {
		t.Fatalf("cold pass cached %d plans, want %d", st.Resident, len(views)*len(updates))
	}

	for _, v := range views {
		for _, u := range updates {
			res, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts)
			if err != nil {
				t.Fatalf("warm %s×%s: %v", v.Name, u.Name, err)
			}
			if res.Plan != "warm" {
				t.Fatalf("warm %s×%s served %q", v.Name, u.Name, res.Plan)
			}
			key := v.Name + "×" + u.Name
			if got := fingerprint(res); got != cold[key] {
				t.Errorf("%s: warm verdict diverged from cold\ncold: %s\nwarm: %s", key, cold[key], got)
			}
		}
	}
}
