#!/usr/bin/env bash
# The full verification gate: static checks, build, the race-enabled
# test suite, and a short fuzz smoke of every fuzz target.
#
#   scripts/ci.sh              # everything (~a few minutes)
#   FUZZTIME=30s scripts/ci.sh # longer fuzz smoke
#
# The fuzz smoke caps the minimizer at 2s so a 10s budget is spent
# actually fuzzing instead of minimizing the first interesting input.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke (${FUZZTIME} per target)"
fuzz() {
  local pkg="$1" target="$2"
  echo "-- ${target} (${pkg})"
  go test "${pkg}" -run '^$' -fuzz "^${target}\$" \
    -fuzztime "${FUZZTIME}" -fuzzminimizetime 2s
}
fuzz ./internal/dtd FuzzParseSchema
fuzz ./internal/xquery FuzzParseQuery
fuzz ./internal/xquery FuzzParseUpdate
fuzz . FuzzAnalyzeContext

echo "== ok"
