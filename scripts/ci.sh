#!/usr/bin/env bash
# The full verification gate: static checks, build, the race-enabled
# test suite, a fixed-seed chaos smoke of the serving layer, and a
# short fuzz smoke of every fuzz target.
#
#   scripts/ci.sh              # everything (~a few minutes)
#   FUZZTIME=30s scripts/ci.sh # longer fuzz smoke
#
# The fuzz smoke caps the minimizer at 2s so a 10s budget is spent
# actually fuzzing instead of minimizing the first interesting input.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted="$(gofmt -l . | grep -v testdata || true)"
if [ -n "${unformatted}" ]; then
  echo "gofmt needed on:" >&2
  echo "${unformatted}" >&2
  exit 1
fi

echo "== xqvet"
go run ./cmd/xqvet ./...

echo "== xqvet negative test (seeded violations must fail the gate)"
# The golden fixtures are a module full of deliberate violations; if
# xqvet ever exits 0 on them, the gate has silently stopped gating.
if go run ./cmd/xqvet -dir internal/vetcheck/testdata/src/fix ./... >/dev/null 2>&1; then
  echo "xqvet negative test failed: fixture violations were not reported" >&2
  exit 1
fi

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== chaos smoke (fixed seed, ${CHAOS_RUNS:-60} runs)"
# A second, differently-seeded pass over the serving layer's chaos
# harness (the default-seed 200-run suite already ran above). Seed and
# run count are pinned so failures reproduce with the printed values.
CHAOS_SEED="${CHAOS_SEED:-424242}" CHAOS_RUNS="${CHAOS_RUNS:-60}" \
  go test ./internal/server -race -count=1 -run 'TestChaos'

echo "== fuzz smoke (${FUZZTIME} per target)"
fuzz() {
  local pkg="$1" target="$2"
  echo "-- ${target} (${pkg})"
  go test "${pkg}" -run '^$' -fuzz "^${target}\$" \
    -fuzztime "${FUZZTIME}" -fuzzminimizetime 2s
}
fuzz ./internal/dtd FuzzParseSchema
fuzz ./internal/xquery FuzzParseQuery
fuzz ./internal/xquery FuzzParseUpdate
fuzz . FuzzAnalyzeContext
fuzz . FuzzParseDocument

echo "== ok"
