package xqindep

import (
	"context"
	"io"
	"net/http"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
	"xqindep/internal/server"
	"xqindep/internal/statefile"
)

// Serving-layer sentinel errors, re-exported for callers of Pool.
var (
	// ErrOverloaded: the admission queue was full and the request was
	// shed without queueing.
	ErrOverloaded = server.ErrOverloaded
	// ErrDraining: the pool is shutting down and no longer admits.
	ErrDraining = server.ErrDraining
	// ErrClosed: the pool has fully shut down.
	ErrClosed = server.ErrClosed
	// ErrCircuitOpen marks a conservative verdict served because the
	// schema's circuit breaker is open; it unwraps to
	// ErrBudgetExceeded.
	ErrCircuitOpen = server.ErrCircuitOpen
)

// PoolOptions configures NewPool. Zero fields take defaults.
type PoolOptions struct {
	// Workers is the number of concurrent analyses (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers);
	// admissions beyond it are shed with ErrOverloaded.
	QueueDepth int
	// Limits is the pool-wide resource budget, subdivided across
	// workers; each request runs under its share.
	Limits Limits
	// RequestTimeout bounds one analysis once a worker picks it up
	// (default 5s; negative disables).
	RequestTimeout time.Duration
	// NoFallback disables the degradation ladder pool-wide.
	NoFallback bool
	// DrainTimeout bounds Close's graceful drain (default 10s).
	DrainTimeout time.Duration
	// BreakerThreshold is the number of consecutive budget blowups on
	// one schema that opens its circuit breaker (default 5; negative
	// disables breaking).
	BreakerThreshold int
	// BreakerBackoff is the initial open duration (default 1s); it
	// doubles on every re-open up to BreakerMaxBackoff (default 60s),
	// jittered by BreakerJitter (default 0.2) from BreakerSeed.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	BreakerJitter     float64
	BreakerSeed       int64
	// AuditRate, when positive, enables the runtime verdict audit: the
	// given fraction of Independent verdicts is re-derived off the
	// request path on independent machinery (the reference chain engine
	// plus a dynamic-oracle replay on generated documents); a
	// disagreement quarantines the schema fingerprint so subsequent
	// verdicts degrade to the conservative "not independent" until
	// clean retrials recover it. 1 audits everything; 0 disables.
	AuditRate float64
	// AuditBudget bounds each audit re-derivation's node and chain
	// consumption, keeping the audit lane from competing with serving
	// (0 = the audit lane's own defaults).
	AuditBudget int
	// QuarantineAfter is the number of audit disagreements on one
	// fingerprint that engages its quarantine (default 1 — a single
	// refuted proof is already an unsoundness incident).
	QuarantineAfter int
	// AuditSeed seeds audit sampling and oracle document generation,
	// making audit decisions reproducible (default 1).
	AuditSeed int64
	// AuditSpool, when non-nil, additionally receives every incident as
	// one JSON object per line (an append-only audit trail; the in-memory
	// incident ring is bounded).
	AuditSpool io.Writer
	// StateDir, when non-empty, makes the pool's containment state
	// durable under this directory: quarantine decisions are journaled
	// on every audit-lane transition (each append individually fsynced)
	// and audit incidents land in a size-capped, rotated
	// incidents.jsonl spool there. A restarted pool pointed at the same
	// directory replays the journal before admitting work, so a
	// fingerprint quarantined before a crash is still refused after it.
	// Open failures do not fail NewPool — the pool runs without
	// durability and StateStatus reports the error; callers that
	// require durability must check it.
	StateDir string
	// MemoryWatermark, when positive, sheds admissions while the process
	// heap exceeds this many bytes.
	MemoryWatermark uint64
	// PlanCacheSize bounds the pool's prepared-plan cache: compiled
	// analysis plans (fingerprinted pair + verdict) are reused across
	// requests on the same schema, keyed by (schema fingerprint, pair
	// fingerprint). 0 selects the default (4096 plans); negative
	// disables reuse with a single-slot cache. The pool owns a private
	// cache so that an audit-lane quarantine purges exactly the plans
	// this pool built for the offending schema.
	PlanCacheSize int
	// TraceRing sizes the HTTP front end's ring of the slowest request
	// traces, served on GET /tracez (0 disables the ring). Per-request
	// traces — "trace": true in an analyze request — work either way.
	TraceRing int
}

// PoolStats snapshots the pool counters.
type PoolStats = server.Stats

// Pool is a concurrent analysis service: a bounded worker pool with
// bounded admission (load shedding instead of unbounded queueing),
// per-schema circuit breaking keyed on Schema.Fingerprint, per-request
// budget subdivision and panic isolation, and graceful drain. Every
// short-circuit path — shed, breaker open, drain — either errors or
// answers the conservative "not independent", so the soundness
// invariant of AnalyzeContext ("independent" is a proof) carries over
// to the serving layer unchanged.
type Pool struct {
	srv   *server.Server
	h     *server.Handler
	aud   *sentinel.Auditor
	reg   *quarantine.Registry
	plans *plan.Cache

	state    *server.DurableState
	stateErr error
}

// NewPool starts a pool with its workers running. Callers must Close
// (or Shutdown) it to release them.
func NewPool(o PoolOptions) *Pool {
	p := &Pool{}
	switch {
	case o.PlanCacheSize > 0:
		p.plans = plan.NewCache(o.PlanCacheSize)
	case o.PlanCacheSize < 0:
		p.plans = plan.NewCache(1)
	default:
		p.plans = plan.NewCache(plan.DefaultCacheSize)
	}
	cfg := server.Config{
		Workers:         o.Workers,
		QueueDepth:      o.QueueDepth,
		Limits:          o.Limits,
		RequestTimeout:  o.RequestTimeout,
		NoFallback:      o.NoFallback,
		DrainTimeout:    o.DrainTimeout,
		MemoryWatermark: o.MemoryWatermark,
		Plans:           p.plans,
		TraceRing:       o.TraceRing,
		Breaker: server.BreakerConfig{
			Threshold:  o.BreakerThreshold,
			Backoff:    o.BreakerBackoff,
			MaxBackoff: o.BreakerMaxBackoff,
			Jitter:     o.BreakerJitter,
			Seed:       o.BreakerSeed,
		},
	}
	if o.AuditRate > 0 || o.StateDir != "" {
		// The registry must exist whenever state is durable, even with
		// auditing off: restored quarantine decisions still have to
		// downgrade verdicts.
		p.reg = quarantine.NewRegistry(quarantine.Config{QuarantineAfter: o.QuarantineAfter})
		cfg.Quarantine = p.reg
	}
	if o.StateDir != "" {
		ds, err := server.OpenState(statefile.OS(), server.StateConfig{Dir: o.StateDir}, p.reg)
		if err != nil {
			p.stateErr = err
		} else {
			p.state = ds
			cfg.State = ds
		}
	}
	if o.AuditRate > 0 {
		spool := o.AuditSpool
		if p.state != nil {
			// Durable state owns the incident trail; an explicit
			// AuditSpool still receives a copy.
			spool = teeSpool{p.state.Spool(), o.AuditSpool}
		}
		p.aud = sentinel.New(sentinel.Config{
			SampleRate: o.AuditRate,
			Seed:       o.AuditSeed,
			Budget:     Limits{MaxNodes: o.AuditBudget, MaxChains: o.AuditBudget},
			Quarantine: p.reg,
			Spool:      spool,
			// The audit lane purges this pool's plan cache when it
			// quarantines a schema: cached verdicts for a fingerprint
			// under suspicion must not outlive the incident.
			Plans: p.plans,
		})
		cfg.Auditor = p.aud
	}
	p.srv = server.New(cfg)
	p.h = server.NewHandler(p.srv)
	return p
}

// Analyze runs one analysis through admission control and the pool,
// synchronously; semantics match Schema.AnalyzeContext plus the
// serving-layer outcomes (ErrOverloaded, ErrDraining, and conservative
// breaker verdicts carrying ErrCircuitOpen in the report's Err).
func (p *Pool) Analyze(ctx context.Context, s *Schema, q *Query, u *Update, m Method, opts Options) (Report, error) {
	r, err := p.srv.Do(ctx, server.Task{
		Analyzer:   s.a,
		Query:      q.ast,
		Update:     u.ast,
		Method:     m,
		Limits:     opts.Limits,
		NoFallback: opts.NoFallback,
		QueryText:  q.src,
		UpdateText: u.src,
	})
	if err != nil {
		return Report{}, err
	}
	return reportFromResult(r), nil
}

// Accepting reports whether the pool still admits work.
func (p *Pool) Accepting() bool { return p.srv.Accepting() }

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats { return p.srv.Stats() }

// BreakerState reports the schema's circuit-breaker state: "closed",
// "open" or "half-open".
func (p *Pool) BreakerState(s *Schema) string {
	return p.srv.BreakerState(s.Fingerprint())
}

// PlanCacheStats snapshots a prepared-plan cache: hit/miss/eviction
// counters, quarantine purges, verify failures, and the resident plan
// count per schema fingerprint. Pools expose it here and on /statz
// under "plan_cache".
type PlanCacheStats = plan.CacheStats

// PlanStats snapshots the pool's prepared-plan cache.
func (p *Pool) PlanStats() PlanCacheStats { return p.plans.Stats() }

// AuditStats snapshots the runtime verdict-audit counters; the zero
// value when auditing is disabled.
type AuditStats = sentinel.Stats

// QuarantineStats snapshots the schema-quarantine registry.
type QuarantineStats = quarantine.Stats

// Incident is one recorded audit disagreement or dirty retrial.
type Incident = sentinel.Incident

// ErrQuarantined marks a conservative verdict served because the
// schema's fingerprint is quarantined after an audit disagreement; it
// unwraps to ErrBudgetExceeded. Test a Report's Err with errors.Is.
var ErrQuarantined = quarantine.ErrQuarantined

// AuditStats reports the audit-lane counters (zero when AuditRate is
// 0) and the quarantine registry snapshot.
func (p *Pool) AuditStats() (AuditStats, QuarantineStats) {
	var a AuditStats
	var q QuarantineStats
	if p.aud != nil {
		a = p.aud.Stats()
	}
	if p.reg != nil {
		q = p.reg.Stats()
	}
	return a, q
}

// Flush blocks until every audit already handed to the audit lane has
// completed, so a following AuditStats or Incidents call observes them.
// Audits run asynchronously off the request path; without a Flush the
// counters are only eventually consistent. No-op when auditing is
// disabled.
func (p *Pool) Flush() {
	if p.aud != nil {
		p.aud.Flush()
	}
}

// Incidents returns the retained audit incidents, oldest first (empty
// when auditing is disabled; the ring is bounded — wire an AuditSpool
// for a complete trail).
func (p *Pool) Incidents() []Incident {
	if p.aud == nil {
		return nil
	}
	return p.aud.Incidents()
}

// DurabilityStatus summarises the durable-state layer: what boot
// recovery replayed (records recovered, torn tails discarded, snapshot
// health, fingerprints re-armed) and the live journal/spool counters.
// It is also the "durability" section of /statz.
type DurabilityStatus = server.DurabilityStatus

// StateStatus reports the durable-state summary. The error is non-nil
// exactly when PoolOptions.StateDir was set but the state directory
// could not be opened; the pool then serves WITHOUT durability, so
// callers that require it (the daemon does) should treat the error as
// fatal. With StateDir unset it returns the zero status and nil.
func (p *Pool) StateStatus() (DurabilityStatus, error) {
	if p.stateErr != nil {
		return DurabilityStatus{}, p.stateErr
	}
	return p.state.Status(), nil
}

// teeSpool routes audit incidents to the durable state spool and, when
// the caller also supplied an AuditSpool, a copy to it. Flush — probed
// by the audit lane's drain — reaches whichever writers support it.
type teeSpool struct {
	primary   io.Writer
	secondary io.Writer // may be nil
}

func (t teeSpool) Write(p []byte) (int, error) {
	n, err := t.primary.Write(p)
	if t.secondary != nil {
		if _, serr := t.secondary.Write(p); serr != nil && err == nil {
			err = serr
		}
	}
	return n, err
}

func (t teeSpool) Flush() error {
	var err error
	for _, w := range []io.Writer{t.primary, t.secondary} {
		if f, ok := w.(interface{ Flush() error }); ok {
			if ferr := f.Flush(); ferr != nil && err == nil {
				err = ferr
			}
		}
	}
	return err
}

// QuarantineState reports the schema's quarantine state: "clean",
// "quarantined" or "half-open".
func (p *Pool) QuarantineState(s *Schema) string {
	if p.reg == nil {
		return "clean"
	}
	return p.reg.State(s.Fingerprint())
}

// Handler returns the pool's HTTP front end: POST /analyze plus the
// operations surface — GET /healthz, /readyz, /statz, /metricz
// (Prometheus text format), /tracez (slowest request traces) and
// /incidentz. See cmd/xqindepd and the README's "Operating xqindepd"
// section for the endpoint and metric reference.
func (p *Pool) Handler() http.Handler { return p.h }

// RunBatch runs the stdin line protocol over the pool: one analyze
// request JSON object per input line, one response object per output
// line. Requests without a schema inherit defaultSchema.
func (p *Pool) RunBatch(ctx context.Context, r io.Reader, w io.Writer, defaultSchema string) error {
	return server.RunBatch(ctx, p.h, r, w, defaultSchema)
}

// Shutdown gracefully drains the pool: admission stops immediately,
// in-flight work finishes until ctx expires, then is hard-cancelled.
// The audit lane drains after the workers under the same ctx — pending
// audits finish, a wedged one is hard-cancelled at the deadline rather
// than holding the exit hostage to its budget. Durable state is closed
// last (audits may journal quarantine transitions right up to their
// cancellation), flushing the incident spool and compacting the
// quarantine journal into a snapshot. The pool is fully stopped when
// Shutdown returns.
func (p *Pool) Shutdown(ctx context.Context) error {
	err := p.srv.Shutdown(ctx)
	if p.aud != nil {
		if aerr := p.aud.Shutdown(ctx); err == nil {
			err = aerr
		}
	}
	if serr := p.state.Close(); err == nil {
		err = serr
	}
	return err
}

// Close is Shutdown under the configured DrainTimeout.
func (p *Pool) Close() error {
	//xqvet:ignore ctxflow Close is the no-caller-context teardown API; its deadline is DrainTimeout
	ctx, cancel := context.WithTimeout(context.Background(), p.srv.Config().DrainTimeout)
	defer cancel()
	return p.Shutdown(ctx)
}

// Serve runs the pool's HTTP API on addr until ctx is cancelled, then
// performs a graceful drain: the listener stops, in-flight requests
// and analyses get drainTimeout to finish, stragglers are cancelled.
// It returns when both the HTTP server and the pool have stopped.
func Serve(ctx context.Context, addr string, p *Pool, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	hs := &http.Server{Addr: addr, Handler: p.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		p.Close()
		return err
	case <-ctx.Done():
	}
	//xqvet:ignore ctxflow drain runs after the serve context died; the drain deadline must outlive it
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the pool first so /readyz flips and queued analyses
	// finish, then close the HTTP side.
	perr := p.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	<-errc // ListenAndServe has returned http.ErrServerClosed
	if perr != nil {
		return perr
	}
	return herr
}

// reportFromResult converts an engine result to the public report.
func reportFromResult(r core.Result) Report {
	return Report{
		Independent:   r.Independent,
		Method:        r.Method,
		K:             r.K,
		Witnesses:     r.Witnesses,
		Elapsed:       r.Elapsed,
		Degraded:      r.Degraded,
		FallbackChain: r.FallbackChain,
		Err:           r.Err,
		Plan:          r.Plan,
	}
}
