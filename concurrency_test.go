package xqindep

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xqindep/internal/xmark"
)

// TestConcurrentSharedSchema verifies the documented concurrency
// contract: Schema, Query and Update are safe for concurrent use by
// any number of goroutines once constructed. The stress deliberately
// parses a *fresh* schema per round and hammers it immediately, so the
// first calls to the lazily-memoized DTD state (recursion/SCC sets,
// minimum heights, fingerprint) race with analysis work — exactly the
// window a memoization bug would open. Run under -race (scripts/ci.sh
// does).
func TestConcurrentSharedSchema(t *testing.T) {
	schemas := []string{
		"bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- #PCDATA\nprice <- #PCDATA",
		"r <- (x | y | z)*\nx <- (x | y | z)*\ny <- (x | y | z)*\nz <- #PCDATA",
		xmark.SchemaText,
	}
	type pair struct{ q, u string }
	pairs := []pair{
		{"//title", "delete //price"},
		{"//y//z", "delete //x//z"},
		{"//keyword", "for $p in //person return delete $p/homepage"},
	}
	methods := []Method{Chains, ChainsExact, Types, Paths}
	lim := Limits{MaxK: 6, MaxChains: 1 << 12, MaxNodes: 1 << 14}

	const workers = 16
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		for si, st := range schemas {
			// Fresh schema each round: the memoized state is cold.
			s, err := ParseSchema(st)
			if err != nil {
				t.Fatal(err)
			}
			var qs []*Query
			var us []*Update
			for _, p := range pairs {
				q, err := ParseQuery(p.q)
				if err != nil {
					t.Fatal(err)
				}
				u, err := ParseUpdate(p.u)
				if err != nil {
					t.Fatal(err)
				}
				qs = append(qs, q)
				us = append(us, u)
			}

			// Every worker analyzes every pair with every method; the
			// verdict for a given (pair, method) must not depend on
			// interleaving.
			verdicts := make([]sync.Map, len(pairs)*len(methods))
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Interleave the metadata accessors with analysis so
					// their first evaluation races with engine reads.
					_ = s.IsRecursive()
					_ = s.Fingerprint()
					_ = s.Size()
					for pi := range pairs {
						for mi, m := range methods {
							rep, err := s.AnalyzeContext(context.Background(), qs[pi], us[pi], m, Options{Limits: lim})
							if err != nil {
								errs <- fmt.Errorf("worker %d pair %d method %v: %v", w, pi, m, err)
								return
							}
							verdicts[pi*len(methods)+mi].Store(rep.Independent, true)
						}
					}
					if _, err := s.Generate(int64(w+1), 0.3, 6); err != nil {
						errs <- fmt.Errorf("worker %d generate: %v", w, err)
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			for i := range verdicts {
				n := 0
				verdicts[i].Range(func(_, _ any) bool { n++; return true })
				if n != 1 {
					t.Errorf("round %d schema %d slot %d: %d distinct verdicts under concurrency", round, si, i, n)
				}
			}
			if t.Failed() {
				return
			}
		}
	}
}
