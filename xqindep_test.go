package xqindep

import (
	"reflect"
	"strings"
	"testing"
)

const bibSchema = `
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`

func TestQuickstartFlow(t *testing.T) {
	schema := MustParseSchema(bibSchema)
	if schema.Start() != "bib" || schema.Size() != 8 || schema.IsRecursive() {
		t.Fatalf("schema basics wrong: %s size %d", schema.Start(), schema.Size())
	}
	q := MustParseQuery("//title")
	u := MustParseUpdate("for $x in //book return insert <author/> into $x")
	ok, err := schema.Independent(q, u)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("q2/u2 must be independent")
	}
	// All four methods run through the same API.
	for _, m := range []Method{Chains, ChainsExact, Types, Paths} {
		r, err := schema.Analyze(q, u, m)
		if err != nil {
			t.Fatalf("Analyze(%v): %v", m, err)
		}
		wantIndep := m == Chains || m == ChainsExact
		if r.Independent != wantIndep {
			t.Errorf("method %v: independent=%v, want %v (witnesses %v)", m, r.Independent, wantIndep, r.Witnesses)
		}
	}
}

func TestExplainChains(t *testing.T) {
	schema := MustParseSchema(bibSchema)
	ev, err := schema.ExplainChains(MustParseQuery("//title"),
		MustParseUpdate("for $x in //book return insert <author/> into $x"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev.Return, []string{"bib.book.title"}) {
		t.Errorf("return chains = %v", ev.Return)
	}
	if !reflect.DeepEqual(ev.Update, []string{"bib.book:author"}) {
		t.Errorf("update chains = %v", ev.Update)
	}
	if ev.K < 2 {
		t.Errorf("k = %d", ev.K)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := MustParseDocument("<bib><book><title>AI</title><price>9</price></book></bib>")
	schema := MustParseSchema(bibSchema)
	if err := schema.Validate(doc); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if doc.Size() != 6 {
		t.Errorf("Size = %d", doc.Size())
	}
	res, err := doc.Run(MustParseQuery("//title"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"<title>AI</title>"}) {
		t.Errorf("Run = %v", res)
	}
	cp := doc.Copy()
	if err := doc.Apply(MustParseUpdate("delete //price")); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc.String(), "price") {
		t.Errorf("Apply did not delete: %s", doc)
	}
	if !strings.Contains(cp.String(), "price") {
		t.Errorf("Copy aliased the original")
	}
	if err := schema.Validate(doc); err == nil {
		// price? is optional so the updated document is still valid
	} else {
		t.Errorf("updated document invalid: %v", err)
	}
}

func TestIndependentOnOracle(t *testing.T) {
	doc := MustParseDocument("<bib><book><title>AI</title></book></bib>")
	q := MustParseQuery("//title")
	ok, err := IndependentOn(doc, q, MustParseUpdate("for $b in //book return insert <author/> into $b"))
	if err != nil || !ok {
		t.Errorf("oracle says dependent or errs: %v %v", ok, err)
	}
	ok2, err := IndependentOn(doc, q, MustParseUpdate("delete //title"))
	if err != nil || ok2 {
		t.Errorf("oracle missed dependence: %v %v", ok2, err)
	}
	// The oracle never mutates its input.
	if doc.String() != "<bib><book><title>AI</title></book></bib>" {
		t.Errorf("oracle mutated document: %s", doc)
	}
}

func TestGenerate(t *testing.T) {
	schema := MustParseSchema(bibSchema)
	doc, err := schema.Generate(7, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(doc); err != nil {
		t.Errorf("generated document invalid: %v", err)
	}
	// Determinism per seed.
	doc2, _ := schema.Generate(7, 0.5, 6)
	if doc.String() != doc2.String() {
		t.Errorf("generation is not deterministic per seed")
	}
}

func TestAPIErrors(t *testing.T) {
	if _, err := ParseSchema("a <- undeclared"); err == nil {
		t.Errorf("bad schema accepted")
	}
	if _, err := ParseQuery("for $x in"); err == nil {
		t.Errorf("bad query accepted")
	}
	if _, err := ParseUpdate("delete"); err == nil {
		t.Errorf("bad update accepted")
	}
	if _, err := ParseDocumentString("<a><b></a>"); err == nil {
		t.Errorf("bad document accepted")
	}
	schema := MustParseSchema(bibSchema)
	// Non-quasi-closed expressions are rejected by analysis.
	q := MustParseQuery("$y/title")
	if _, err := schema.Independent(q, MustParseUpdate("delete //price")); err == nil {
		t.Errorf("free-variable query accepted by analysis")
	}
	// Runtime errors surface from Apply.
	doc := MustParseDocument("<bib><book><title>x</title></book><book><title>y</title></book></bib>")
	if err := doc.Apply(MustParseUpdate("insert <author/> into //book")); err == nil {
		t.Errorf("multi-node insert target must fail")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{Chains: "chains", ChainsExact: "chains-exact", Types: "types", Paths: "paths"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestCommuteAPI(t *testing.T) {
	schema := MustParseSchema(bibSchema)
	u1 := MustParseUpdate("delete //author")
	u2 := MustParseUpdate("delete //price")
	ok, err := schema.Commute(u1, u2)
	if err != nil || !ok {
		t.Errorf("Commute = %v, %v; want true", ok, err)
	}
	u3 := MustParseUpdate("for $b in //book return insert <author/> into $b")
	ok, err = schema.Commute(u1, u3)
	if err != nil || ok {
		t.Errorf("insert author vs delete author should not commute")
	}
	if _, err := schema.Commute(MustParseUpdate("delete $z/a"), u2); err == nil {
		t.Errorf("non-quasi-closed update accepted")
	}
}

func TestPreservesSchemaAPI(t *testing.T) {
	schema := MustParseSchema(bibSchema)
	ok, reasons := schema.PreservesSchema(MustParseUpdate("delete //author"))
	if !ok || len(reasons) != 0 {
		t.Errorf("delete //author should preserve: %v", reasons)
	}
	ok, reasons = schema.PreservesSchema(MustParseUpdate("delete //title"))
	if ok || len(reasons) == 0 {
		t.Errorf("delete //title must be flagged")
	}
}

func TestRecursiveSchemaEndToEnd(t *testing.T) {
	schema := MustParseSchema(`
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`)
	if !schema.IsRecursive() {
		t.Fatalf("d1 should be recursive")
	}
	q := MustParseQuery("/descendant::b")
	u := MustParseUpdate("delete /descendant::c")
	ok, err := schema.Independent(q, u)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("the Section 5 pair must be dependent (k=kq+ku matters)")
	}
	r, _ := schema.Analyze(q, u, Chains)
	if r.K != 2 {
		t.Errorf("k = %d, want 2", r.K)
	}
}
