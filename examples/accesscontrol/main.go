// Access control: the paper's third motivation (after Benedikt and
// Cheney). A protection query defines the region of the database a
// class of users must not change; a user update is admitted only when
// it is statically independent of that query — no runtime monitoring
// needed, and soundness guarantees no protected data is ever touched
// by an admitted update.
//
// Run with: go run ./examples/accesscontrol
package main

import (
	"fmt"
	"log"

	"xqindep"
)

const hospitalSchema = `
hospital <- patient*
patient <- name, admin, medical
name <- #PCDATA
admin <- room, phone?
room <- #PCDATA
phone <- #PCDATA
medical <- diagnosis*, prescription*
diagnosis <- #PCDATA
prescription <- drug, dose
drug <- #PCDATA
dose <- #PCDATA
`

func main() {
	schema, err := xqindep.ParseSchema(hospitalSchema)
	if err != nil {
		log.Fatal(err)
	}

	// Clerks may reorganise administrative data but must never affect
	// anything a medical query can see.
	protected := xqindep.MustParseQuery("//patient/medical")

	requests := []struct {
		who    string
		update string
	}{
		{"clerk", "for $p in //patient return replace $p/admin/room with <room>b12</room>"},
		{"clerk", "for $a in //patient/admin return insert <phone>555</phone> into $a"},
		{"clerk", "delete //patient/admin/phone"},
		{"clerk", "delete //patient"},                               // removes medical data too!
		{"clerk", "for $m in //medical return delete $m/diagnosis"}, // direct violation
		{"nurse", "for $m in //medical return insert <prescription><drug>x</drug><dose>1</dose></prescription> into $m"},
	}

	fmt.Println("protection query:", protected)
	fmt.Println()
	for _, r := range requests {
		u, err := xqindep.ParseUpdate(r.update)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := schema.Analyze(protected, u, xqindep.Chains)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Independent {
			fmt.Printf("ALLOW %-5s %s\n", r.who, r.update)
		} else {
			fmt.Printf("DENY  %-5s %s\n", r.who, r.update)
			for _, w := range rep.Witnesses {
				fmt.Printf("      reason: %s\n", w)
			}
		}
	}

	// Precision comparison: a room renumbering expressed with an
	// upward axis. The schema-less path analysis must deny it (upward
	// navigation degrades to "anywhere"); chains prove it safe.
	u := xqindep.MustParseUpdate("for $r in //room return replace $r/../room with <room>b12</room>")
	chainRep, err := schema.Analyze(protected, u, xqindep.Chains)
	if err != nil {
		log.Fatal(err)
	}
	pathRep, err := schema.Analyze(protected, u, xqindep.Paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprecision (upward-axis update): chains independent=%v, schema-less paths independent=%v\n",
		chainRep.Independent, pathRep.Independent)
}
