// Quickstart: the two worked examples from the paper's introduction.
//
// Example 1: q1 = //a//c vs u1 = delete //b//c over the schema
// { doc ← (a|b)*, a ← c, b ← c }. Schema-less and flat type-set
// analyses cannot separate the pair; chains can — the inferred chains
// doc.a.c and doc.b:c are prefix-disjoint.
//
// Example 2: over a bibliographic schema, //title is independent of
// inserting authors into books: the chains bib.book.title and
// bib.book:author diverge after book.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xqindep"
)

func main() {
	// ----- Example 1: ancestor context matters ------------------------
	schema1, err := xqindep.ParseSchema(`
doc <- (a | b)*
a <- c
b <- c
c <- ()
`)
	if err != nil {
		log.Fatal(err)
	}
	q1 := xqindep.MustParseQuery("//a//c")
	u1 := xqindep.MustParseUpdate("delete //b//c")

	fmt.Println("Example 1:  q1 = //a//c   vs   u1 = delete //b//c")
	showAll(schema1, q1, u1)

	// The runtime oracle agrees on a concrete document.
	doc := xqindep.MustParseDocument("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>")
	ok, err := xqindep.IndependentOn(doc, q1, u1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  runtime check on the Figure 1 document: independent = %v\n\n", ok)

	// ----- Example 2: sibling types diverge ---------------------------
	schema2, err := xqindep.ParseSchema(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)
	if err != nil {
		log.Fatal(err)
	}
	q2 := xqindep.MustParseQuery("//title")
	u2 := xqindep.MustParseUpdate("for $x in //book return insert <author/> into $x")

	fmt.Println("Example 2:  q2 = //title   vs   u2 = insert <author/> into every book")
	showAll(schema2, q2, u2)

	ev, err := schema2.ExplainChains(q2, u2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  inferred chains (k=%d):\n", ev.K)
	fmt.Printf("    query returns:  %v\n", ev.Return)
	fmt.Printf("    update changes: %v\n", ev.Update)
	fmt.Println("  bib.book.title and bib.book:author diverge after book → independent.")
}

// showAll runs every analysis method on the pair and prints a line per
// verdict.
func showAll(s *xqindep.Schema, q *xqindep.Query, u *xqindep.Update) {
	for _, m := range []xqindep.Method{xqindep.Chains, xqindep.ChainsExact, xqindep.Types, xqindep.Paths} {
		rep, err := s.Analyze(q, u, m)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "INDEPENDENT"
		if !rep.Independent {
			verdict = "possibly dependent"
		}
		fmt.Printf("  %-12s → %s\n", m, verdict)
	}
}
