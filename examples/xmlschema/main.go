// Extended DTDs (paper Section 7): XML-Schema-style schemas let two
// element types share one tag with different content models depending
// on context. Chains are inferred over *types*, so the analysis
// distinguishes contexts that plain tag-based reasoning cannot.
//
// Here a <name> element means different things under <person> and
// under <company>; updates to company names are provably independent
// of queries over person names, even though the tags collide.
//
// Run with: go run ./examples/xmlschema
package main

import (
	"fmt"
	"log"

	"xqindep"
)

// The bracket notation type[label] declares an EDTD type: pname and
// cname both produce <name> elements.
const schemaText = `
start directory
directory <- person*, company*
person <- pname, email?
company <- cname, sector
pname[name] <- first, last
cname[name] <- #PCDATA
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
sector <- #PCDATA
`

const document = `<directory>
  <person><name><first>Ada</first><last>Lovelace</last></name><email>ada@x</email></person>
  <company><name>Analytical Engines Ltd</name><sector>compute</sector></company>
</directory>`

func main() {
	schema, err := xqindep.ParseSchema(schemaText)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xqindep.ParseDocumentString(document)
	if err != nil {
		log.Fatal(err)
	}
	if err := schema.Validate(doc); err != nil {
		log.Fatal("document should validate: ", err)
	}
	fmt.Println("EDTD validated: two <name> types with different content models")

	// A query over person names vs an update rewriting company names.
	q := xqindep.MustParseQuery("//person/name/last")
	u := xqindep.MustParseUpdate(
		"for $c in //company return replace $c/name with <name>renamed</name>")

	ev, err := schema.ExplainChains(q, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery  %s\n  return chains: %v\n", q, ev.Return)
	fmt.Printf("update %s\n  update chains: %v\n", u, ev.Update)

	ok, err := schema.Independent(q, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchains verdict: independent = %v (the types pname/cname diverge)\n", ok)
	if !ok {
		log.Fatal("expected independence")
	}

	// The schema-less path analysis cannot separate the two <name>
	// contexts by tag alone... and even the flat type-set baseline only
	// succeeds if its types are the EDTD types rather than tags.
	rep, err := schema.Analyze(q, u, xqindep.Paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema-less paths verdict: independent = %v\n", rep.Independent)

	// Runtime confirmation on the concrete document.
	confirmed, err := xqindep.IndependentOn(doc, q, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime check on the sample document: %v\n", confirmed)

	// Sanity: a query that does read company names is flagged.
	q2 := xqindep.MustParseQuery("//company/name")
	dep, err := schema.Independent(q2, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control (//company/name vs same update): independent = %v\n", dep)
}
