// View maintenance: the paper's primary motivation. A set of
// materialised views is kept over an auction document; as updates
// stream in, the static analysis decides which views actually need
// re-materialisation. Views deemed independent keep their previous
// result — the runtime verifies every skipped refresh was correct.
//
// Run with: go run ./examples/viewmaint
package main

import (
	"fmt"
	"log"

	"xqindep"
)

const auctionSchema = `
site <- items, auctions
items <- item*
item <- name, description, mailbox
name <- #PCDATA
description <- (#PCDATA | keyword)*
keyword <- #PCDATA
mailbox <- mail*
mail <- #PCDATA
auctions <- auction*
auction <- itemname, price, bidder*
itemname <- #PCDATA
price <- #PCDATA
bidder <- #PCDATA
`

const document = `<site>
  <items>
    <item><name>clock</name><description>antique <keyword>rare</keyword></description><mailbox><mail>q1</mail></mailbox></item>
    <item><name>vase</name><description>ming</description><mailbox/></item>
  </items>
  <auctions>
    <auction><itemname>clock</itemname><price>100</price><bidder>ann</bidder></auction>
    <auction><itemname>vase</itemname><price>40</price></auction>
  </auctions>
</site>`

func main() {
	schema, err := xqindep.ParseSchema(auctionSchema)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xqindep.ParseDocumentString(document)
	if err != nil {
		log.Fatal(err)
	}
	if err := schema.Validate(doc); err != nil {
		log.Fatal(err)
	}

	views := map[string]*xqindep.Query{
		"item-names":   xqindep.MustParseQuery("//item/name"),
		"keywords":     xqindep.MustParseQuery("//description/keyword"),
		"prices":       xqindep.MustParseQuery("//auction/price"),
		"active-bids":  xqindep.MustParseQuery("for $a in //auction return if ($a/bidder) then $a/itemname else ()"),
		"full-mailbox": xqindep.MustParseQuery("//item[mailbox/mail]/name"),
	}
	updates := []*xqindep.Update{
		xqindep.MustParseUpdate("for $m in //item/mailbox return insert <mail>spam</mail> into $m"),
		xqindep.MustParseUpdate("for $a in //auction return replace $a/price with <price>0</price>"),
		xqindep.MustParseUpdate("delete //description/keyword"),
	}

	// Materialise all views once.
	materialised := make(map[string][]string, len(views))
	for name, v := range views {
		res, err := doc.Run(v)
		if err != nil {
			log.Fatal(err)
		}
		materialised[name] = res
	}

	refreshed, skipped := 0, 0
	for i, u := range updates {
		fmt.Printf("update %d: %s\n", i+1, u)
		if err := doc.Apply(u); err != nil {
			log.Fatal(err)
		}
		for name, v := range views {
			indep, err := schema.Independent(v, u)
			if err != nil {
				log.Fatal(err)
			}
			fresh, err := doc.Run(v)
			if err != nil {
				log.Fatal(err)
			}
			if indep {
				skipped++
				// Safety net: the skipped refresh must have been a
				// no-op. Soundness of the analysis guarantees this.
				if !equal(materialised[name], fresh) {
					log.Fatalf("UNSOUND: view %q changed after a skipped refresh", name)
				}
				fmt.Printf("  %-14s unchanged (refresh skipped)\n", name)
				continue
			}
			refreshed++
			materialised[name] = fresh
			fmt.Printf("  %-14s re-materialised → %d rows\n", name, len(fresh))
		}
	}
	fmt.Printf("\n%d refreshes executed, %d skipped by the static analysis\n", refreshed, skipped)
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
