// Recursive schemas and the finite k-chain analysis (Section 5 of the
// paper). Over a recursive DTD the chain universe is infinite; the
// analyzer derives a multiplicity k = kq + ku from the expressions
// (Table 3) and reasons over k-chains only — provably equivalent to
// the infinite analysis. This example shows why max(kq, ku) would be
// wrong, on the paper's own d1 schema.
//
// Run with: go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	"xqindep"
)

func main() {
	// The Section 5 schema d1: five mutually recursive types.
	schema, err := xqindep.ParseSchema(`
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema d1 is recursive:", schema.IsRecursive())

	// The paper's pair: q = /descendant::b, u = delete /descendant::c.
	// Both have kq = ku = 1; with k = max = 1 the representative chains
	// r.a.b and r.a:c would not conflict — yet the pair is dependent
	// (a deletion can remove a c node above a b node). k = kq+ku = 2
	// captures the interleaving r.a.c.f.a.b.
	q := xqindep.MustParseQuery("/descendant::b")
	u := xqindep.MustParseUpdate("delete /descendant::c")
	rep, err := schema.Analyze(q, u, xqindep.Chains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s  vs  %s\n", q, u)
	fmt.Printf("  k = kq + ku = %d → %s\n", rep.K, verdict(rep.Independent))
	ev, _ := schema.ExplainChains(q, u)
	fmt.Printf("  query chains:  %v\n", head(ev.Return, 4))
	fmt.Printf("  update chains: %v\n", head(ev.Update, 4))

	// A genuinely independent pair on the same recursive schema: g
	// leaves under e-branches vs deleting b-branches... b and e are
	// sibling types below a, so /r/a/e is untouched by delete /r/a/b.
	q2 := xqindep.MustParseQuery("/r/a/e")
	u2 := xqindep.MustParseUpdate("delete /r/a/b")
	rep2, err := schema.Analyze(q2, u2, xqindep.Chains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s  vs  %s\n", q2, u2)
	fmt.Printf("  k = %d → %s\n", rep2.K, verdict(rep2.Independent))

	// Sanity-check both verdicts against execution on generated
	// documents of the recursive schema.
	for seed := int64(0); seed < 5; seed++ {
		doc, err := schema.Generate(seed, 0.6, 8)
		if err != nil {
			log.Fatal(err)
		}
		ok2, err := xqindep.IndependentOn(doc, q2, u2)
		if err != nil {
			log.Fatal(err)
		}
		if !ok2 {
			log.Fatalf("UNSOUND claim on seed %d", seed)
		}
	}
	fmt.Println("\nruntime spot-check over 5 generated documents: all consistent")

	// The Section 5 path example: /r/a/b/f/a needs k = 2 (tag a occurs
	// twice); with the pair below, k = kq+ku = 3 and the analysis still
	// terminates instantly despite the infinite chain universe.
	q3 := xqindep.MustParseQuery("/r/a/b/f/a")
	u3 := xqindep.MustParseUpdate("delete /descendant::g")
	rep3, err := schema.Analyze(q3, u3, xqindep.Chains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s  vs  %s\n  k = %d → %s (in %v)\n", q3, u3, rep3.K, verdict(rep3.Independent), rep3.Elapsed)
}

func verdict(indep bool) string {
	if indep {
		return "INDEPENDENT"
	}
	return "possibly dependent"
}

func head(ss []string, n int) []string {
	if len(ss) <= n {
		return ss
	}
	return append(append([]string{}, ss[:n]...), "…")
}
